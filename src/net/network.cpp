#include "net/network.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "net/engine.hpp"
#include "p4rt/table_io.hpp"
#include "p4rt/tele_codec.hpp"

namespace hydra::net {

namespace {

obs::TopKFlow to_topk_flow(const p4rt::FlowId& f) {
  obs::TopKFlow t;
  t.parsed = f.parsed;
  t.src_ip = f.src_ip;
  t.dst_ip = f.dst_ip;
  t.src_port = f.src_port;
  t.dst_port = f.dst_port;
  t.proto = f.proto;
  return t;
}

}  // namespace

Network::Network(Topology topo) : topo_(std::move(topo)) {
  for (const auto& l : topo_.links()) links_.emplace_back(l);
  cold_until_.assign(static_cast<std::size_t>(topo_.node_count()), 0.0);
  hosts_.resize(static_cast<std::size_t>(topo_.node_count()));
  programs_.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    const NodeSpec& n = topo_.node(i);
    if (n.kind == NodeKind::kHost) {
      hosts_[static_cast<std::size_t>(i)] = Host(i, n.name, n.ip, n.mac);
    }
  }
  engine_ = std::make_unique<SerialEngine>(*this);
  events_.set_executor(engine_.get());
  rebuild_contexts();
}

Network::~Network() = default;

void Network::set_engine(EngineKind kind, int workers) {
  if (kind == EngineKind::kSerial) {
    engine_kind_ = EngineKind::kSerial;
    engine_workers_ = 1;
    engine_.reset();  // join any previous pool before replacing
    engine_ = std::make_unique<SerialEngine>(*this);
  } else {
    if (workers <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      workers = hw > 1 ? static_cast<int>(hw) : 2;
    }
    engine_kind_ = EngineKind::kParallel;
    engine_workers_ = workers;
    engine_.reset();
    engine_ = std::make_unique<ParallelEngine>(*this, workers);
  }
  events_.set_executor(engine_.get());
  rebuild_contexts();
}

Host& Network::host(int node_id) {
  if (topo_.node(node_id).kind != NodeKind::kHost) {
    throw std::invalid_argument("node " + std::to_string(node_id) +
                                " is not a host");
  }
  return hosts_[static_cast<std::size_t>(node_id)];
}

void Network::set_program(int switch_id,
                          std::shared_ptr<ForwardingProgram> prog) {
  if (topo_.node(switch_id).kind != NodeKind::kSwitch) {
    throw std::invalid_argument("node " + std::to_string(switch_id) +
                                " is not a switch");
  }
  programs_[static_cast<std::size_t>(switch_id)] = std::move(prog);
  if (obs_ != nullptr) rewire_observability();
}

ForwardingProgram* Network::program(int switch_id) {
  return programs_[static_cast<std::size_t>(switch_id)].get();
}

Network::Deployment& Network::live_deployment(int deployment,
                                              const char* what) {
  if (deployment < 0 ||
      deployment >= static_cast<int>(deployments_.size())) {
    throw std::invalid_argument(std::string(what) + ": deployment id " +
                                std::to_string(deployment) +
                                " out of range");
  }
  Deployment& d = deployments_[static_cast<std::size_t>(deployment)];
  if (!d.live) {
    throw std::invalid_argument(
        std::string(what) + ": deployment id " + std::to_string(deployment) +
        " is retired (checker '" + d.checker->name + "' was undeployed)");
  }
  return d;
}

const Network::Deployment& Network::live_deployment(int deployment,
                                                    const char* what) const {
  return const_cast<Network*>(this)->live_deployment(deployment, what);
}

void Network::note_property(const std::string& name) {
  const auto it = std::lower_bound(known_properties_.begin(),
                                   known_properties_.end(), name);
  if (it == known_properties_.end() || *it != name) {
    known_properties_.insert(it, name);
  }
}

int Network::stage_deployment(
    std::shared_ptr<const compiler::CompiledChecker> checker,
    std::uint8_t phase) {
  if (!checker) throw std::invalid_argument("deploy: null checker");
  // Prefer reusing a retired slot; the deployment-id space is bounded by
  // the 64-bit rejected_deps mask, and reuse is what keeps a long-running
  // daemon deploying forever.
  int slot = -1;
  for (std::size_t i = 0; i < deployments_.size(); ++i) {
    if (!deployments_[i].live && deployments_[i].pending_swaps == 0) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0) {
    if (deployments_.size() >= static_cast<std::size_t>(kMaxDeployments)) {
      throw std::runtime_error(
          "deploy: all " + std::to_string(kMaxDeployments) +
          " deployment slots are live; undeploy one first");
    }
    deployments_.emplace_back();
    slot = static_cast<int>(deployments_.size()) - 1;
  }
  Deployment& d = deployments_[static_cast<std::size_t>(slot)];
  const bool reused = d.checker != nullptr;
  d.checker = checker;
  d.tele_wire_bytes = checker->layout.wire_bytes;
  d.generation = static_cast<std::uint32_t>(generations_.size());
  d.live = true;
  d.retiring = false;
  d.pending_swaps = 0;
  d.per_switch.assign(static_cast<std::size_t>(topo_.node_count()), {});
  d.phase.assign(static_cast<std::size_t>(topo_.node_count()),
                 kPhaseRetired);
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      d.per_switch[static_cast<std::size_t>(i)] =
          p4rt::make_checker_state(checker->ir);
      d.phase[static_cast<std::size_t>(i)] = phase;
    }
  }
  generations_.push_back({checker, checker->name, false});
  stale_counters_.emplace_back();
  note_property(checker->name);
  if (reused) {
    reset_context_scratch(static_cast<std::size_t>(slot));
  } else {
    for (auto& ctx : contexts_) add_context_scratch(ctx, d);
  }
  if (obs_ != nullptr) {
    // Rewiring recreates shard shadow registries; fold any unabsorbed
    // shard counts into the main registry first so a rolling deploy that
    // lands between engine slices loses nothing.
    absorb_shard_metrics();
    rewire_observability();
  }
  if (obs_ != nullptr && obs_->live != nullptr && obs_->live->topk) {
    // A reused slot must not inherit the old property's attribution.
    obs_->live->topk->redefine_property(slot, checker->name);
  }
  return slot;
}

int Network::deploy(
    std::shared_ptr<const compiler::CompiledChecker> checker) {
  return stage_deployment(std::move(checker), kPhaseEnabled);
}

int Network::deploy_rolling(
    std::shared_ptr<const compiler::CompiledChecker> checker) {
  const int slot = stage_deployment(std::move(checker), kPhaseStaged);
  schedule_swaps(slot, kPhaseEnabled);
  return slot;
}

void Network::schedule_swaps(int slot, std::uint8_t phase) {
  Deployment& d = deployments_[static_cast<std::size_t>(slot)];
  for (int sw = 0; sw < topo_.node_count(); ++sw) {
    if (topo_.node(sw).kind != NodeKind::kSwitch) continue;
    const ControlHandle h = alloc_control();
    ControlOp& op = control_op(h);
    op.kind = ControlOp::Kind::kSwap;
    op.deployment = slot;
    op.enable = phase == kPhaseEnabled;
    events_.schedule_control_at(events_.now(), sw, h);
    ++d.pending_swaps;
  }
}

void Network::undeploy_rolling(int deployment) {
  Deployment& d = live_deployment(deployment, "undeploy_rolling");
  if (d.retiring) return;  // sweep already in flight
  if (d.pending_swaps > 0) {
    throw std::logic_error(
        "undeploy_rolling: deploy sweep still in flight for slot " +
        std::to_string(deployment));
  }
  d.retiring = true;
  // Register the per-generation reject counter BEFORE the first switch
  // flips: frames rejected mid-sweep (stamped with this generation, hitting
  // an already-retired switch) must count from the very first one — a
  // detached handle would drop them on the floor.
  register_stale_counter(d.generation);
  schedule_swaps(deployment, kPhaseRetired);
}

void Network::undeploy(int deployment) {
  if (!events_.empty()) {
    throw std::logic_error("undeploy: event queue must be idle");
  }
  Deployment& d = live_deployment(deployment, "undeploy");
  std::fill(d.phase.begin(), d.phase.end(), kPhaseRetired);
  d.retiring = true;
  finalize_retirement(static_cast<std::size_t>(deployment));
}

void Network::finalize_retirement(std::size_t slot) {
  Deployment& d = deployments_[slot];
  d.live = false;
  d.retiring = false;
  d.pending_swaps = 0;
  // The checker stays (name + IR for attribution and forensics labels);
  // the per-switch sensor state is gone for good. Frames stamped with
  // this generation now reject fail-closed wherever they surface.
  d.per_switch.clear();
  d.per_switch.shrink_to_fit();
  generations_[d.generation].retired = true;
  register_stale_counter(d.generation);
}

void Network::register_stale_counter(std::uint32_t gen) {
  if (obs_ == nullptr) {
    stale_counters_[gen] = {};
    return;
  }
  const std::string& prop = generations_[gen].property;
  stale_counters_[gen] = obs_->registry.counter(
      "checker." + prop + ".stale_generation",
      "hydra_checker_stale_generation_rejects_total",
      {{"property", prop}});
}

bool Network::swap_in_progress() const {
  for (const auto& d : deployments_) {
    if (d.pending_swaps > 0) return true;
  }
  return false;
}

bool Network::deployment_live(int deployment) const {
  if (deployment < 0 ||
      deployment >= static_cast<int>(deployments_.size())) {
    throw std::invalid_argument("deployment_live: id out of range");
  }
  return deployments_[static_cast<std::size_t>(deployment)].live;
}

std::uint32_t Network::deployment_generation(int deployment) const {
  if (deployment < 0 ||
      deployment >= static_cast<int>(deployments_.size())) {
    throw std::invalid_argument("deployment_generation: id out of range");
  }
  return deployments_[static_cast<std::size_t>(deployment)].generation;
}

const compiler::CompiledChecker& Network::checker(int deployment) const {
  if (deployment < 0 ||
      deployment >= static_cast<int>(deployments_.size())) {
    throw std::invalid_argument("checker: deployment id out of range");
  }
  // Retired slots keep their CompiledChecker for attribution, so reading
  // the program of an undeployed property stays legal.
  return *deployments_[static_cast<std::size_t>(deployment)].checker;
}

p4rt::Table& Network::checker_table(int deployment, int switch_id,
                                    const std::string& var) {
  Deployment& d = live_deployment(deployment, "checker_table");
  const int t = d.checker->ir.find_table(var);
  if (t < 0) {
    throw std::invalid_argument("checker '" + d.checker->name +
                                "' has no control table '" + var + "'");
  }
  return d.per_switch.at(static_cast<std::size_t>(switch_id))
      .tables[static_cast<std::size_t>(t)];
}

void Network::set_config(int deployment, int switch_id,
                         const std::string& var,
                         std::vector<BitVec> values) {
  checker_table(deployment, switch_id, var).set_default(std::move(values));
}

void Network::set_config_all(int deployment, const std::string& var,
                             std::vector<BitVec> values) {
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      set_config(deployment, i, var, values);
    }
  }
}

void Network::dict_insert_all(int deployment, const std::string& var,
                              const std::vector<BitVec>& key,
                              std::vector<BitVec> value) {
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      checker_table(deployment, i, var).insert_exact(key, value);
    }
  }
}

// ---- fault injection ------------------------------------------------------

void Network::arm_faults(const FaultPlan& plan, std::uint64_t seed) {
  if (!events_.empty()) {
    throw std::logic_error("arm_faults: event queue must be idle");
  }
  faults_ = std::make_unique<FaultInjector>(plan, seed,
                                            static_cast<int>(links_.size()));
  std::fill(cold_until_.begin(), cold_until_.end(), 0.0);
  const double t0 = events_.now();
  // Outages (scheduled failures + precomputed flaps). Generic closures are
  // safe here: link up/down state is only consulted by transmit, which
  // runs on the main thread under both engines.
  for (const LinkFailure& o : faults_->outages()) {
    if (o.link < 0 || o.link >= static_cast<int>(links_.size())) continue;
    if (o.up_at < o.down_at) continue;
    events_.schedule_at(t0 + o.down_at, [this, l = o.link]() {
      if (faults_ != nullptr) faults_->link_down_event(l);
    });
    events_.schedule_at(t0 + o.up_at, [this, l = o.link]() {
      if (faults_ != nullptr) faults_->link_up_event(l);
    });
  }
  // Restarts ride the ControlOp channel so each register wipe is sharded
  // to the switch's owning worker and ordered against its packet hops.
  for (const SwitchRestart& r : plan.restarts) {
    if (r.sw < 0 || r.sw >= topo_.node_count() ||
        topo_.node(r.sw).kind != NodeKind::kSwitch) {
      continue;
    }
    const ControlHandle op = alloc_control();
    control_op(op).kind = ControlOp::Kind::kRestart;
    events_.schedule_control_at(t0 + r.at, r.sw, op);
  }
}

ControlHandle Network::alloc_control() {
  const ControlHandle h = control_pool_.alloc();
  ControlOp& op = control_pool_.get(h);
  op.kind = ControlOp::Kind::kRestart;
  op.deployment = -1;
  op.enable = false;
  op.var.clear();
  op.key.clear();
  op.value.clear();
  return h;
}

void Network::disarm_faults() {
  if (!events_.empty()) {
    throw std::logic_error("disarm_faults: event queue must be idle");
  }
  faults_.reset();
  std::fill(cold_until_.begin(), cold_until_.end(), 0.0);
}

const FaultStats& Network::fault_stats() const {
  static const FaultStats kEmpty;
  return faults_ != nullptr ? faults_->stats() : kEmpty;
}

void Network::dict_insert_all_delayed(int deployment, const std::string& var,
                                      const std::vector<BitVec>& key,
                                      const std::vector<BitVec>& value) {
  if (faults_ == nullptr || (faults_->plan().rule_push_delay_s <= 0.0 &&
                             faults_->plan().rule_push_jitter_s <= 0.0)) {
    dict_insert_all(deployment, var, key, value);
    return;
  }
  // Validate the variable up front — apply_control runs on a worker
  // thread and must not throw.
  const Deployment& d =
      live_deployment(deployment, "dict_insert_all_delayed");
  if (d.checker->ir.find_table(var) < 0) {
    throw std::invalid_argument("checker '" + d.checker->name +
                                "' has no control table '" + var + "'");
  }
  for (int sw = 0; sw < topo_.node_count(); ++sw) {
    if (topo_.node(sw).kind != NodeKind::kSwitch) continue;
    const ControlHandle h = alloc_control();
    ControlOp& op = control_op(h);
    op.kind = ControlOp::Kind::kDictInsert;
    op.deployment = deployment;
    op.var = var;
    op.key = key;
    op.value = value;
    events_.schedule_control_at(events_.now() + faults_->next_push_delay(),
                                sw, h);
  }
}

void Network::apply_control(SimTime t, int sw, const ControlOp& op,
                            HopResult& res) {
  res.control = true;
  if (op.kind == ControlOp::Kind::kRestart) {
    // The restart lost every deployment's sensor contents on this switch;
    // wipe them and mark the switch cold so checkers do not raise false
    // violations off zeroed registers. Retired slots have no state left.
    for (auto& d : deployments_) {
      if (d.per_switch.empty()) continue;
      auto& state = d.per_switch[static_cast<std::size_t>(sw)];
      for (auto& reg : state.registers) reg.reset();
    }
    const double warmup =
        faults_ != nullptr ? faults_->plan().restart_warmup_s : 0.0;
    cold_until_[static_cast<std::size_t>(sw)] = t + warmup;
    res.restarted = true;
    return;
  }
  if (op.kind == ControlOp::Kind::kSwap) {
    // One leg of a rolling sweep: flip this switch's phase for the slot.
    // Shard-confined (the phase vector cell for `sw` is only touched on
    // sw's owning shard), so the flip is ordered against this switch's
    // packet hops exactly as under serial execution. Slot bookkeeping
    // (pending_swaps, retirement) happens at commit.
    const auto dep = static_cast<std::size_t>(op.deployment);
    if (dep >= deployments_.size()) return;
    deployments_[dep].phase[static_cast<std::size_t>(sw)] =
        op.enable ? kPhaseEnabled : kPhaseRetired;
    return;
  }
  // kDictInsert: a delayed controller rule push landing on this switch.
  const auto dep = static_cast<std::size_t>(op.deployment);
  if (dep >= deployments_.size()) return;
  Deployment& d = deployments_[dep];
  if (!d.live || d.per_switch.empty()) return;  // undeployed mid-push
  const int ti = d.checker->ir.find_table(op.var);
  if (ti < 0) return;  // validated at schedule time; stay defensive
  d.per_switch[static_cast<std::size_t>(sw)]
      .tables[static_cast<std::size_t>(ti)]
      .insert_exact(op.key, op.value);
  res.rule_pushed = true;
}

void Network::corrupt_frame(p4rt::Packet& pkt, std::uint64_t entropy) {
  if (pkt.tele.empty()) return;
  p4rt::TeleFrame& frame =
      pkt.tele[static_cast<std::size_t>(entropy % pkt.tele.size())];
  if (frame.checker < 0 ||
      frame.checker >= static_cast<int>(deployments_.size()) ||
      frame.damaged) {
    return;
  }
  // Reserialize against the GENERATION the frame was stamped with — the
  // slot may since have been relinked to a different layout.
  if (frame.generation >= generations_.size() ||
      generations_[frame.generation].checker == nullptr) {
    return;
  }
  const compiler::CompiledChecker& gc =
      *generations_[frame.generation].checker;
  if (frame.values.size() != gc.ir.fields.size()) return;
  std::vector<std::uint8_t> bytes =
      p4rt::serialize_frame(gc.layout, gc.ir, frame);
  CorruptMode mode = faults_->plan().corrupt_mode;
  if (mode == CorruptMode::kRandom) {
    switch ((entropy >> 8) % 3) {
      case 0: mode = CorruptMode::kBadTag; break;
      case 1: mode = CorruptMode::kTruncate; break;
      default: mode = CorruptMode::kBitFlip; break;
    }
  }
  const auto preamble = static_cast<std::size_t>(
      compiler::TelemetryLayout::kPreambleBytes);
  if (mode == CorruptMode::kBitFlip && bytes.size() <= preamble) {
    mode = CorruptMode::kBadTag;  // no payload bits to flip
  }
  switch (mode) {
    case CorruptMode::kBadTag:
      bytes[0] = static_cast<std::uint8_t>(bytes[0] ^ 0xff);
      break;
    case CorruptMode::kTruncate:
      // Strictly shorter, so the size check always fires at the next hop.
      bytes.resize((entropy >> 16) % bytes.size());
      break;
    case CorruptMode::kBitFlip: {
      // Undetectable without a checksum: the frame re-parses fine with a
      // silently wrong value. Realism, not a bug — the fail-closed path
      // only covers damage the codec CAN detect.
      const std::size_t payload = bytes.size() - preamble;
      const std::size_t byte = preamble + ((entropy >> 16) % payload);
      bytes[byte] = static_cast<std::uint8_t>(
          bytes[byte] ^ (1u << ((entropy >> 40) % 8)));
      break;
    }
    case CorruptMode::kRandom:
      break;  // resolved above
  }
  frame.wire = std::move(bytes);
  frame.damaged = true;
}

p4rt::RegisterArray& Network::checker_register(int deployment, int switch_id,
                                               const std::string& var) {
  Deployment& d = live_deployment(deployment, "checker_register");
  const int r = d.checker->ir.find_register(var);
  if (r < 0) {
    throw std::invalid_argument("checker '" + d.checker->name +
                                "' has no sensor '" + var + "'");
  }
  return d.per_switch.at(static_cast<std::size_t>(switch_id))
      .registers[static_cast<std::size_t>(r)];
}

void Network::subscribe_reports(ReportCallback callback) {
  report_callbacks_.push_back(std::move(callback));
}

void Network::emit_report(ReportRecord record) {
  reports_.push_back(std::move(record));
  const ReportRecord& stored = reports_.back();
  for (const auto& cb : report_callbacks_) cb(stored);
}

int Network::pipeline_stages() const {
  int stages = baseline_.stages;
  for (const auto& d : deployments_) {
    if (!d.live) continue;
    stages = std::max(stages, d.checker->resources.checker_stages);
  }
  return stages;
}

double Network::switch_latency() const {
  return base_proc_s_ + per_stage_s_ * pipeline_stages();
}

SimTime Network::min_spawn_delay() const {
  SimTime d = std::numeric_limits<SimTime>::infinity();
  for (const auto& l : topo_.links()) d = std::min(d, l.latency_s);
  return d;
}

bool Network::flow_sharding_allowed() const {
  if (obs_ != nullptr || faults_ != nullptr) return false;
  for (const auto& d : deployments_) {
    if (d.live && !d.checker->ir.registers.empty()) return false;
  }
  for (const auto& p : programs_) {
    if (p != nullptr && !p->concurrent_safe()) return false;
  }
  return true;
}

void Network::set_concurrent_tables(bool on) {
  for (auto& ctx : contexts_) {
    for (auto& pd : ctx.deps) {
      if (pd.interp) pd.interp->set_shared_tables(on);
    }
  }
  for (const auto& p : programs_) {
    if (p != nullptr) p->set_concurrent(on);
  }
}

int Network::packet_wire_bytes(const p4rt::Packet& pkt) const {
  int bytes = pkt.base_wire_bytes();
  for (const auto& f : pkt.tele) {
    if (f.checker < 0) continue;
    // Size by the generation the frame was stamped with: a straggler of a
    // relinked slot still occupies the OLD layout's bytes on the wire.
    if (f.generation < generations_.size() &&
        generations_[f.generation].checker != nullptr) {
      bytes += generations_[f.generation].checker->layout.wire_bytes;
    } else if (f.checker < static_cast<int>(deployments_.size())) {
      bytes += deployments_[static_cast<std::size_t>(f.checker)]
                   .tele_wire_bytes;
    }
  }
  return bytes;
}

void Network::send_from_host(int host_id, p4rt::Packet pkt) {
  const PacketHandle h = packet_pool_.alloc();
  // Copy-assign into the pooled slot: the slot's vectors keep their
  // capacity, and slab addresses are stable across the alloc above.
  packet(h) = std::move(pkt);
  send_pooled(host_id, h);
}

void Network::send_pooled(int host_id, PacketHandle h) {
  Host& host_obj = host(host_id);
  p4rt::Packet& pkt = packet(h);
  pkt.id = next_packet_id_++;
  pkt.created_at = events_.now();
  if (pkt.eth.src == 0) pkt.eth.src = host_obj.mac();
  ++counters_.injected;
  if (obs_ != nullptr && obs_->sampler && obs_->traces.has_capacity() &&
      obs_->sampler(pkt)) {
    obs_->traces.begin(pkt.id, events_.now(),
                       p4rt::flow_of(pkt).to_string());
  }
  transmit({host_id, 0}, h);
}

void Network::transmit(PortRef from, PacketHandle ph) {
  const int li = topo_.link_index(from);
  if (li < 0) {
    free_packet(ph);  // unconnected port: packet vanishes
    return;
  }
  const LinkSpec& spec = topo_.links()[static_cast<std::size_t>(li)];
  const int dir = spec.a == from ? 0 : 1;
  const PortRef dest = dir == 0 ? spec.b : spec.a;
  Link& link = links_[static_cast<std::size_t>(li)];
  p4rt::Packet& pkt = packet(ph);

  // Fault injection rolls its dice here and nowhere else on the packet
  // path: transmit runs on the commit path (main thread, canonical order)
  // under both engines, so the per-(link, dir) streams advance identically
  // regardless of engine kind or worker count.
  double extra_delay = 0.0;
  if (faults_ != nullptr) {
    const LinkFaultAction action =
        faults_->on_transmit(li, dir, pkt.has_live_tele());
    if (action.drop) {
      ++counters_.fault_dropped;
      if (obs_ != nullptr && obs_->traces.tracing()) {
        obs_->traces.finish(pkt.id, obs::PacketFate::kFaultDropped,
                            events_.now());
      }
      free_packet(ph);
      return;
    }
    if (action.corrupt) corrupt_frame(pkt, action.corrupt_entropy);
    if (action.duplicate) {
      // The copy is its own packet (fresh id, never sampled for tracing)
      // and does NOT re-roll the fault dice — one draw per original
      // transmit keeps the streams packet-count-independent.
      const PacketHandle dh = packet_pool_.alloc();
      p4rt::Packet& dup = packet(dh);
      dup = pkt;
      dup.id = next_packet_id_++;
      const auto dup_arrival =
          link.transmit(dir, events_.now(), packet_wire_bytes(dup));
      if (dup_arrival) {
        events_.schedule_packet_at(*dup_arrival, dest.node, dest.port, dh);
      } else {
        ++counters_.queue_dropped;
        free_packet(dh);
      }
    }
    extra_delay = action.extra_delay_s;
  }

  const auto arrival =
      link.transmit(dir, events_.now(), packet_wire_bytes(pkt));
  if (!arrival) {
    ++counters_.queue_dropped;
    if (obs_ != nullptr && obs_->traces.tracing()) {
      obs_->traces.finish(pkt.id, obs::PacketFate::kQueueDropped,
                          events_.now());
    }
    free_packet(ph);
    return;
  }
  events_.schedule_packet_at(*arrival + extra_delay, dest.node, dest.port,
                             ph);
}

void Network::deliver_packet(const SwitchWork& work) {
  node_receive(work.sw, work.in_port, work.pkt);
}

void Network::node_receive(int node, int port, PacketHandle ph) {
  const NodeSpec& spec = topo_.node(node);
  if (spec.kind == NodeKind::kHost) {
    p4rt::Packet& pkt = packet(ph);
    ++counters_.delivered;
    if (obs_ != nullptr) {
      if (obs_->live != nullptr) {
        obs_->live->topk->on_delivered(to_topk_flow(p4rt::flow_of(pkt)));
      }
      obs_->delivered_hops.observe(pkt.hops);
      // Detached (one branch) unless streaming export armed the handle.
      obs_->delivered_latency.observe(events_.now() - pkt.created_at);
      if (obs_->traces.tracing()) {
        obs_->traces.finish(pkt.id, obs::PacketFate::kDelivered,
                            events_.now());
      }
    }
    Host& h = hosts_[static_cast<std::size_t>(node)];
    auto reply = h.deliver(pkt, events_.now());
    // Recycle the slot before injecting the reply so short request/reply
    // exchanges circulate through a single pooled packet.
    free_packet(ph);
    if (reply) send_from_host(node, std::move(*reply));
    return;
  }
  // Switch: model pipeline traversal latency, then process. The delay is
  // the engines' lookahead — switch work never lands inside the epoch
  // window that created it (see net/engine.hpp).
  events_.schedule_switch_in(switch_latency(), node, port, ph);
}

// ---- per-hop pipeline (engine-driven) -------------------------------------

void Network::compute_hop(ExecContext& ctx, SimTime t, SwitchWork& work,
                          HopResult& res) {
  const int sw = work.sw;

  res.decision = {};
  res.last_hop = false;
  res.fwd_drop = false;
  res.rejected = false;
  res.rejected_deps = 0;
  res.stale_generations.clear();
  res.traced = false;
  res.reports.clear();
  res.hop = obs::TraceHop{};
  res.control = false;
  res.restarted = false;
  res.rule_pushed = false;
  res.reject_reason = nullptr;
  res.decode_rejects = 0;
  res.decode_recovered = 0;
  res.cold_suppressed = 0;

  // Control-plane work rides the same channel so it is sharded to this
  // switch's owner and ordered against its packet hops (see ControlOp).
  if (work.ctl != kNullHandle) {
    apply_control(t, sw, control_op(work.ctl), res);
    return;
  }

  // Workers only READ pool slabs during compute; alloc/free happen on the
  // commit path, and slab addresses are stable across growth, so this
  // reference stays valid for the whole hop.
  p4rt::Packet& pkt = packet(work.pkt);
  ++pkt.hops;
  HopContext hctx;
  hctx.switch_id = sw;
  hctx.switch_tag = switch_tag(sw);
  hctx.in_port = work.in_port;
  hctx.first_hop = topo_.host_facing({sw, work.in_port});
  hctx.wire_bytes = packet_wire_bytes(pkt);

  // Hop trace, recorded only for sampled packets (the untraced cost is one
  // null check plus, while any trace is live, one hash probe on the packet
  // id). The record is filled locally and appended to the trace at commit
  // time — compute must not mutate the shared sink.
  obs::TraceHop* hop = nullptr;
  if (obs_ != nullptr && obs_->traces.tracing() &&
      obs_->traces.active(pkt.id) != nullptr) {
    res.traced = true;
    hop = &res.hop;
    hop->hop = pkt.hops;
    hop->switch_id = sw;
    hop->switch_name = topo_.node(sw).name;
    hop->time = t;
    hop->in_port = work.in_port;
    hop->first_hop = hctx.first_hop;
    hop->wire_bytes = hctx.wire_bytes;
  }

  auto resolver = [&pkt, &hctx](const std::string& ann, int width) {
    return resolve_header(pkt, hctx, ann, width);
  };

  auto collect_reports = [&](std::size_t di, const Deployment& d,
                             p4rt::ExecOutcome& out) {
    for (auto& r : out.reports) {
      ReportRecord rec{static_cast<int>(di), d.checker->name, sw, t,
                       std::move(r)};
      rec.flow = p4rt::flow_of(pkt);
      rec.hop_count = pkt.hops;
      res.reports.push_back(std::move(rec));
    }
  };

  // Flight recorder armed? Provenance buffers are cleared here (and
  // accumulated across the init+tele+check runs of one hop); the interp's
  // provenance pointer itself is wired by rewire_observability.
  const bool forensic = obs_ != nullptr && obs_->recorder != nullptr;

  // Cold sensors: a fault-injected restart wiped this switch's registers
  // recently, so checker verdicts computed here cannot be trusted.
  // cold_until_ is written by apply_control and read here, both on the
  // shard that owns this switch. One branch when faults are disarmed.
  const bool cold_sw =
      faults_ != nullptr && t < cold_until_[static_cast<std::size_t>(sw)];

  // 1. Hydra init at the first hop: create and fill telemetry frames.
  // Only switches whose swap phase is fully enabled stamp frames — the
  // per-switch gate a rolling deploy sweeps through the control channel.
  if (hctx.first_hop) {
    for (std::size_t di = 0; di < deployments_.size(); ++di) {
      Deployment& d = deployments_[di];
      if (d.phase[static_cast<std::size_t>(sw)] != kPhaseEnabled) continue;
      ExecContext::PerDeployment& pd = ctx.deps[di];
      pd.init_runs.inc();
      if (forensic) pd.prov.clear();
      pd.interp->reset_store(pd.vals);
      std::vector<BitVec>& vals = pd.vals;
      p4rt::ExecOutcome& out = pd.out;
      out.reject = false;
      out.reports.clear();
      pd.interp->run(d.checker->ir.init_block, vals,
                     d.per_switch[static_cast<std::size_t>(sw)], resolver,
                     out);
      // Re-arm a retired tele slot in place (deployment order matches the
      // old push_back order; all slots retire together at the last hop).
      p4rt::TeleFrame& frame = pkt.add_frame(static_cast<int>(di));
      frame.generation = d.generation;
      pd.interp->store_frame(vals, frame);
      if (cold_sw) frame.cold = true;
      if (hop != nullptr) {
        hop->checkers.push_back(
            trace_checker_record(d, &frame, /*before=*/nullptr, out,
                                 /*init=*/true, /*tele=*/false,
                                 /*check=*/false));
      }
      pd.reports.inc(out.reports.size());
      collect_reports(di, d, out);
    }
  }

  // 2. Forwarding.
  ForwardingProgram* prog = programs_[static_cast<std::size_t>(sw)].get();
  ForwardingProgram::Decision decision;
  if (prog != nullptr) {
    decision = prog->process(pkt, work.in_port, sw);
  } else {
    decision.drop = true;
  }
  hctx.eg_port = decision.eg_port;
  hctx.fwd_drop = decision.drop;
  // A forwarding drop ends the packet's journey: this is its last hop, so
  // the checker still gets to observe (and report) the drop decision.
  hctx.last_hop =
      decision.drop ||
      (decision.eg_port >= 0 && topo_.host_facing({sw, decision.eg_port}));
  hctx.wire_bytes = packet_wire_bytes(pkt);

  // 3./4. Telemetry at every hop; checker at the last hop (or every hop,
  // for checkers compiled with per-hop placement).
  bool rejected = false;
  for (std::size_t di = 0; di < deployments_.size(); ++di) {
    Deployment& d = deployments_[di];
    ExecContext::PerDeployment& pd = ctx.deps[di];
    p4rt::TeleFrame* frame = pkt.frame(static_cast<int>(di));
    if (frame == nullptr) continue;  // entered before deployment; skip

    // Stale generation, fail-closed: the frame belongs to a retired (or
    // relinked) occupant of this slot — on this switch the swap has
    // landed, or the slot was reused and the generation no longer
    // matches. Executing it would read freed/foreign state; silently
    // dropping it would lose the frame; attributing it to the slot's
    // CURRENT occupant would mix two properties. So: counted reject,
    // attributed per generation, never a crash. The slot's own counters
    // (pd.*) and rejected_deps deliberately do NOT move.
    if (d.phase[static_cast<std::size_t>(sw)] == kPhaseRetired ||
        frame->generation != d.generation) {
      // Only the FRAME is rejected — the packet itself keeps forwarding.
      // Folding this into `rejected` would drop user traffic (and count a
      // checker verdict) for what is purely control-plane churn.
      res.reject_reason = "tele_stale_generation";
      res.stale_generations.push_back(frame->generation);
      if (forensic && frame->generation == d.generation) {
        // Retired-but-not-reused: the IR still matches the frame, so a
        // forensics note is meaningful. After reuse the layouts differ —
        // recording would mix old and new properties, so skip.
        pd.prov.clear();
        pd.out.reject = true;
        pd.out.reports.clear();
        record_hop_forensics(pd, di, pkt, hctx, t, &decision, pd.out,
                             /*ran_init=*/false, /*ran_tele=*/false,
                             /*ran_check=*/false, "tele_stale_generation");
      }
      continue;
    }

    // Damaged wire bytes (injected corruption on the inbound link): the
    // frame must re-parse through the checked codec before its values can
    // be trusted. A parse failure is the headline fail-closed path — a
    // counted, forensics-annotated reject, NEVER a throw (the pre-fix
    // codec threw std::invalid_argument out of the event loop here).
    if (frame->damaged) {
      p4rt::TeleFrame reparsed;
      const p4rt::FrameError err = p4rt::parse_frame_checked(
          d.checker->layout, d.checker->ir, frame->checker, frame->wire,
          reparsed);
      if (err != p4rt::FrameError::kOk) {
        const char* reason = p4rt::frame_error_reason(err);
        ++res.decode_rejects;
        res.reject_reason = reason;
        pd.decode_rejects.inc();
        rejected = true;
        // di < 64 always: deploy() enforces kMaxDeployments, so reject
        // attribution is never silently dropped.
        res.rejected_deps |= 1ULL << di;
        if (forensic) {
          pd.prov.clear();
          pd.out.reject = true;
          pd.out.reports.clear();
          record_hop_forensics(pd, di, pkt, hctx, t, &decision, pd.out,
                               /*ran_init=*/false, /*ran_tele=*/false,
                               /*ran_check=*/false, reason);
        }
        continue;
      }
      frame->values = std::move(reparsed.values);
      frame->wire.clear();
      frame->damaged = false;
      ++res.decode_recovered;
      pd.decode_recovered.inc();
    }
    if (cold_sw) frame->cold = true;

    pd.tele_runs.inc();
    std::vector<BitVec> trace_before;  // traced packets only
    if (hop != nullptr) trace_before = frame->values;
    // At the first hop the provenance buffer still holds the init run's
    // captures; this hop's record covers init+tele+check together.
    if (forensic && !hctx.first_hop) pd.prov.clear();
    pd.interp->reset_store(pd.vals);
    std::vector<BitVec>& vals = pd.vals;
    pd.interp->load_frame(*frame, vals);
    p4rt::ExecOutcome& out = pd.out;
    out.reject = false;
    out.reports.clear();
    auto& state = d.per_switch[static_cast<std::size_t>(sw)];
    pd.interp->run(d.checker->ir.tele_block, vals, state, resolver, out);
    const bool run_check =
        hctx.last_hop ||
        d.checker->options.placement == compiler::CheckPlacement::kEveryHop;
    if (run_check) {
      pd.check_runs.inc();
      pd.interp->run(d.checker->ir.check_block, vals, state, resolver, out);
    }
    // Cold suppression: a verdict derived from freshly-wiped sensor state
    // is noise, not a violation — drop it, count it, annotate it.
    const char* fault_note = nullptr;
    if (frame->cold && (out.reject || !out.reports.empty())) {
      out.reject = false;
      out.reports.clear();
      ++res.cold_suppressed;
      pd.cold_suppr.inc();
      fault_note = "cold_suppressed";
    }
    pd.interp->store_frame(vals, *frame);
    if (hop != nullptr) {
      hop->checkers.push_back(
          trace_checker_record(d, frame, &trace_before, out,
                               /*init=*/false, /*tele=*/true, run_check));
    }
    if (wire_validation_) {
      const auto bytes = p4rt::serialize_frame(d.checker->layout,
                                               d.checker->ir, *frame);
      const auto back = p4rt::parse_frame(d.checker->layout, d.checker->ir,
                                          frame->checker, bytes);
      for (std::size_t i = 0; i < frame->values.size(); ++i) {
        if (d.checker->ir.fields[i].space == ir::Space::kTele &&
            !(back.values[i] == frame->values[i])) {
          throw std::logic_error(
              "telemetry wire round-trip mismatch in checker '" +
              d.checker->name + "' field '" + d.checker->ir.fields[i].name +
              "'");
        }
      }
    }
    if (out.reject) {
      pd.rejects.inc();
      // di < 64 always (kMaxDeployments); attribution never dropped.
      res.rejected_deps |= 1ULL << di;
    }
    pd.reports.inc(out.reports.size());
    if (forensic) {
      record_hop_forensics(pd, di, pkt, hctx, t, &decision, out,
                           /*ran_init=*/hctx.first_hop, /*ran_tele=*/true,
                           run_check, fault_note);
    }
    collect_reports(di, d, out);
    rejected = rejected || out.reject;
  }

  // Strip telemetry before the packet exits the network (retire, not
  // erase: the slots' capacity belongs to the pooled packet).
  if (hctx.last_hop) pkt.retire_frames();

  if (hop != nullptr) {
    hop->eg_port = hctx.eg_port;
    hop->last_hop = hctx.last_hop;
    hop->fwd_drop = hctx.fwd_drop;
    hop->rejected = rejected;
    hop->forwarding = prog != nullptr ? prog->name() : "none";
  }

  res.decision = decision;
  res.last_hop = hctx.last_hop;
  res.fwd_drop = decision.drop;
  res.rejected = rejected;
}

void Network::commit_hop(SimTime t, SwitchWork&& work, HopResult&& res) {
  const int sw = work.sw;
  // Control-plane work carried no packet; only fault/swap bookkeeping
  // commits, then the pooled op returns to its arena.
  if (res.control) {
    if (work.ctl != kNullHandle) {
      const ControlOp& op = control_op(work.ctl);
      if (op.kind == ControlOp::Kind::kSwap) {
        const auto dep = static_cast<std::size_t>(op.deployment);
        if (dep < deployments_.size()) {
          Deployment& d = deployments_[dep];
          if (d.pending_swaps > 0 && --d.pending_swaps == 0) {
            // Sweep complete. Committed on the canonical path with
            // (parallel) workers parked, so retirement lands at the same
            // (t, seq) point under every engine.
            if (d.retiring) finalize_retirement(dep);
          }
        }
      }
    }
    if (faults_ != nullptr) {
      if (res.restarted) ++faults_->stats().restarts;
      if (res.rule_pushed) ++faults_->stats().delayed_pushes;
    }
    if (work.ctl != kNullHandle) control_pool_.free(work.ctl);
    return;
  }
  // Fail-closed stale-frame rejects, attributed per GENERATION (the
  // retired property's counter — never the slot's current occupant).
  for (const std::uint32_t gen : res.stale_generations) {
    if (gen < stale_counters_.size()) stale_counters_[gen].inc();
  }
  const p4rt::Packet& pkt = packet(work.pkt);
  // Fault effects produced in compute fold into the injector's stats here,
  // on the canonical commit path, so totals match across engines.
  if (faults_ != nullptr &&
      (res.decode_rejects | res.decode_recovered | res.cold_suppressed)) {
    FaultStats& fs = faults_->stats();
    fs.tele_rejects += res.decode_rejects;
    fs.tele_recovered += res.decode_recovered;
    fs.cold_suppressed += res.cold_suppressed;
  }
  // Forensics reconstruction runs before the reports are moved out, and on
  // the commit path only — canonical (t, seq) order, so the stored
  // ViolationReports are identical across engines.
  if (obs_ != nullptr && obs_->recorder != nullptr &&
      (res.rejected || !res.reports.empty())) {
    build_violation(work, res, t);
  }
  for (auto& rec : res.reports) {
    if (obs_ != nullptr && obs_->live != nullptr) {
      obs_->live->topk->on_report(to_topk_flow(rec.flow), rec.deployment);
    }
    emit_report(std::move(rec));
  }
  if (res.traced) {
    if (obs::PacketTrace* tr = obs_->traces.active(pkt.id)) {
      tr->hops.push_back(std::move(res.hop));
    }
  }

  if (res.fwd_drop) {
    ++counters_.fwd_dropped;
    if (obs_ != nullptr) {
      obs_->switches[static_cast<std::size_t>(sw)].fwd_dropped.inc();
      if (obs_->traces.tracing()) {
        obs_->traces.finish(pkt.id, obs::PacketFate::kFwdDropped,
                            events_.now());
      }
    }
    free_packet(work.pkt);
    return;
  }
  if (res.rejected) {
    ++counters_.rejected;
    if (obs_ != nullptr) {
      if (obs_->live != nullptr) {
        obs_->live->topk->on_rejected(to_topk_flow(p4rt::flow_of(pkt)),
                                      res.rejected_deps);
      }
      obs_->switches[static_cast<std::size_t>(sw)].rejected.inc();
      if (obs_->traces.tracing()) {
        obs_->traces.finish(pkt.id, obs::PacketFate::kRejected,
                            events_.now());
      }
    }
    free_packet(work.pkt);
    return;
  }
  if (obs_ != nullptr) {
    obs_->switches[static_cast<std::size_t>(sw)].forwarded.inc();
  }
  transmit({sw, res.decision.eg_port}, work.pkt);
}

void Network::process_hop_serial(SimTime t, SwitchWork&& work) {
  ExecContext& ctx = context_for_switch(work.sw);
  compute_hop(ctx, t, work, ctx.scratch);
  commit_hop(t, std::move(work), std::move(ctx.scratch));
}

// ---- execution contexts ---------------------------------------------------

void Network::rebuild_contexts() {
  contexts_.clear();
  contexts_.resize(static_cast<std::size_t>(engine_workers_));
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    // Distinct deterministic stream per worker (SplitMix64-style spread).
    contexts_[i].rng =
        Rng(0x9e3779b97f4a7c15ULL ^
            (0xd1342543de82ef95ULL * static_cast<std::uint64_t>(i + 1)));
    for (const auto& d : deployments_) {
      add_context_scratch(contexts_[i], d);
    }
  }
  rewire_observability();
}

void Network::add_context_scratch(ExecContext& ctx, const Deployment& d) {
  ExecContext::PerDeployment pd;
  pd.interp = std::make_unique<p4rt::Interp>(d.checker->ir);
  ctx.deps.push_back(std::move(pd));
}

void Network::reset_context_scratch(std::size_t slot) {
  const Deployment& d = deployments_[slot];
  for (auto& ctx : contexts_) {
    ExecContext::PerDeployment& pd = ctx.deps[slot];
    pd.interp = std::make_unique<p4rt::Interp>(d.checker->ir);
    pd.vals.clear();
    pd.out.reject = false;
    pd.out.reports.clear();
    pd.prov.clear();
  }
}

// ---- observability --------------------------------------------------------

obs::CheckerHopRecord Network::trace_checker_record(
    const Deployment& d, const p4rt::TeleFrame* after,
    const std::vector<BitVec>* before, const p4rt::ExecOutcome& out,
    bool init, bool tele, bool check) const {
  obs::CheckerHopRecord rec;
  rec.checker = d.checker->name;
  rec.ran_init = init;
  rec.ran_tele = tele;
  rec.ran_check = check;
  rec.reject = out.reject;
  for (const auto& r : out.reports) {
    std::vector<std::uint64_t> payload;
    payload.reserve(r.size());
    for (const auto& v : r) payload.push_back(v.value());
    rec.reports.push_back(std::move(payload));
  }
  const ir::CheckerIR& ir = d.checker->ir;
  for (std::size_t i = 0; i < ir.fields.size(); ++i) {
    if (ir.fields[i].space != ir::Space::kTele) continue;
    obs::TraceFieldValue fv;
    fv.name = ir.fields[i].name;
    fv.before = before != nullptr && i < before->size()
                    ? (*before)[i].value()
                    : 0;
    fv.after = after != nullptr && i < after->values.size()
                   ? after->values[i].value()
                   : 0;
    rec.tele.push_back(std::move(fv));
  }
  return rec;
}

// ---- forensics ------------------------------------------------------------

void Network::record_hop_forensics(ExecContext::PerDeployment& pd,
                                   std::size_t di, const p4rt::Packet& pkt,
                                   const HopContext& hctx, SimTime t,
                                   const ForwardingProgram::Decision* dec,
                                   const p4rt::ExecOutcome& out,
                                   bool ran_init, bool ran_tele,
                                   bool ran_check, const char* fault_note) {
  obs::HopRecord& rec = obs_->recorder->append(hctx.switch_id);
  rec.packet_id = pkt.id;
  rec.hop = pkt.hops;
  rec.switch_id = hctx.switch_id;
  rec.deployment = static_cast<int>(di);
  rec.time = t;
  rec.in_port = hctx.in_port;
  rec.eg_port = hctx.eg_port;
  rec.first_hop = hctx.first_hop;
  rec.last_hop = hctx.last_hop;
  rec.fwd_drop = hctx.fwd_drop;
  rec.reject = out.reject;
  rec.ran_init = ran_init;
  rec.ran_tele = ran_tele;
  rec.ran_check = ran_check;
  rec.report_count = static_cast<std::uint8_t>(
      out.reports.size() < 255 ? out.reports.size() : 255);
  rec.fwd_reason = dec != nullptr ? dec->reason : nullptr;
  rec.fault_note = fault_note;
  for (const auto& th : pd.prov.table_hits) {
    rec.add_table_hit(static_cast<std::int16_t>(th.table), th.entry, th.hit);
  }
  for (const auto& rt : pd.prov.reg_touches) {
    rec.add_reg_touch(static_cast<std::int16_t>(rt.reg), rt.wrote, rt.before,
                      rt.after);
  }
  const ir::CheckerIR& ir = deployments_[di].checker->ir;
  const p4rt::TeleFrame* frame = pkt.frame(static_cast<int>(di));
  if (frame != nullptr) {
    for (std::size_t i = 0; i < ir.fields.size(); ++i) {
      if (ir.fields[i].space != ir::Space::kTele) continue;
      rec.add_tele(static_cast<std::int16_t>(i),
                   i < frame->values.size() ? frame->values[i].value() : 0);
    }
  }
}

void Network::build_violation(const SwitchWork& work, const HopResult& res,
                              SimTime t) {
  ++obs_->violations_seen;
  if (obs_->violations.size() >= kMaxViolationReports) return;

  const p4rt::Packet& pkt = packet(work.pkt);
  std::vector<const obs::HopRecord*> recs;
  obs_->recorder->collect(pkt.id, recs);
  std::sort(recs.begin(), recs.end(),
            [](const obs::HopRecord* a, const obs::HopRecord* b) {
              if (a->hop != b->hop) return a->hop < b->hop;
              return a->deployment < b->deployment;
            });

  obs::ViolationReport vr;
  vr.packet_id = pkt.id;
  vr.flow = p4rt::flow_of(pkt).to_string();
  vr.kind = res.rejected ? "reject" : "report";
  vr.reason = res.reject_reason != nullptr
                  ? res.reject_reason
                  : (res.rejected ? "checker_reject" : "checker_report");
  vr.switch_id = work.sw;
  vr.switch_name = topo_.node(work.sw).name;
  vr.time = t;
  vr.hop_count = pkt.hops;
  for (const auto& rep : res.reports) {
    std::vector<std::uint64_t> payload;
    payload.reserve(rep.values.size());
    for (const auto& v : rep.values) payload.push_back(v.value());
    vr.report_payloads.push_back(std::move(payload));
  }
  // Checkers behind the verdict: final-hop records that rejected/reported.
  for (const obs::HopRecord* r : recs) {
    if (r->hop != pkt.hops || (!r->reject && r->report_count == 0)) {
      continue;
    }
    const std::string& name =
        deployments_[static_cast<std::size_t>(r->deployment)].checker->name;
    if (std::find(vr.checkers.begin(), vr.checkers.end(), name) ==
        vr.checkers.end()) {
      vr.checkers.push_back(name);
    }
  }
  // One ViolationHop per hop number; one checker entry per record.
  for (const obs::HopRecord* r : recs) {
    if (vr.hops.empty() || vr.hops.back().hop != r->hop) {
      obs::ViolationHop vh;
      vh.hop = r->hop;
      vh.switch_id = r->switch_id;
      vh.switch_name = topo_.node(r->switch_id).name;
      vh.time = r->time;
      vh.in_port = r->in_port;
      vh.eg_port = r->eg_port;
      vh.first_hop = r->first_hop;
      vh.last_hop = r->last_hop;
      vh.fwd_drop = r->fwd_drop;
      vh.fwd_reason = r->fwd_reason != nullptr ? r->fwd_reason : "";
      vr.hops.push_back(std::move(vh));
    }
    const ir::CheckerIR& ir =
        deployments_[static_cast<std::size_t>(r->deployment)].checker->ir;
    obs::ViolationHopChecker vc;
    vc.checker =
        deployments_[static_cast<std::size_t>(r->deployment)].checker->name;
    vc.ran_init = r->ran_init;
    vc.ran_tele = r->ran_tele;
    vc.ran_check = r->ran_check;
    vc.reject = r->reject;
    vc.report_count = r->report_count;
    vc.provenance_truncated = r->truncated != 0;
    if (r->fault_note != nullptr) vc.fault_note = r->fault_note;
    for (int i = 0; i < r->n_table_hits; ++i) {
      const auto& th = r->table_hits[i];
      vc.table_hits.push_back(
          {ir.tables[static_cast<std::size_t>(th.table)].name, th.entry,
           th.hit});
    }
    for (int i = 0; i < r->n_reg_touches; ++i) {
      const auto& rt = r->reg_touches[i];
      vc.reg_touches.push_back(
          {ir.registers[static_cast<std::size_t>(rt.reg)].name, rt.wrote,
           rt.before, rt.after});
    }
    for (int i = 0; i < r->n_tele; ++i) {
      const auto& tv = r->tele[i];
      vc.tele.push_back(
          {ir.fields[static_cast<std::size_t>(tv.field)].name, tv.value});
    }
    vr.hops.back().checkers.push_back(std::move(vc));
  }
  // Truncated when the rings have already evicted the first-hop records
  // (or the packet entered the network before forensics was armed).
  vr.truncated = vr.hops.empty() || !vr.hops.front().first_hop;
  obs::detail::note_forensics_allocation();
  obs_->violations.push_back(std::move(vr));
}

void Network::set_forensics(bool enabled, std::size_t ring_capacity) {
  if (!enabled) {
    if (obs_ == nullptr || obs_->recorder == nullptr) return;
    obs_->recorder.reset();
    obs_->violations.clear();
    obs_->violations_seen = 0;
    rewire_observability();  // disarms interpreter provenance capture
    return;
  }
  if (ring_capacity == 0) {
    throw std::invalid_argument("set_forensics: ring_capacity must be > 0");
  }
  set_observability(true);
  if (obs_->recorder != nullptr &&
      obs_->recorder->capacity() == ring_capacity) {
    return;
  }
  obs_->recorder = std::make_unique<obs::FlightRecorder>(topo_.node_count(),
                                                         ring_capacity);
  rewire_observability();
}

const std::vector<obs::ViolationReport>& Network::violation_reports() const {
  static const std::vector<obs::ViolationReport> kEmpty;
  return obs_ != nullptr ? obs_->violations : kEmpty;
}

std::string Network::violation_reports_json() const {
  return obs::violations_json(violation_reports());
}

void Network::clear_violation_reports() {
  if (obs_ == nullptr) return;
  obs_->violations.clear();
  obs_->violations_seen = 0;
}

// ---- engine phase profiling -----------------------------------------------

void Network::set_engine_profiling(bool enabled) {
  if (!enabled) {
    if (obs_ == nullptr || obs_->profiler == nullptr) return;
    obs_->profiler.reset();
    return;
  }
  set_observability(true);
  if (obs_->profiler != nullptr) return;
  obs_->profiler = std::make_unique<obs::EngineProfiler>();
  rewire_observability();
}

obs::EngineProfiler& Network::engine_profiler() {
  if (obs_ == nullptr || obs_->profiler == nullptr) {
    throw std::logic_error(
        "engine profiling is off; call set_engine_profiling(true) first");
  }
  return *obs_->profiler;
}

// ---- streaming export -----------------------------------------------------

namespace {

// Delivered-latency bucket grid: switch traversal is ~1us plus link
// propagation per hop, so the bounds span a single hop through long
// multi-hop / queueing tails.
const std::vector<double>& delivered_latency_bounds() {
  static const std::vector<double> kBounds{1e-6, 2e-6, 5e-6, 1e-5, 2e-5,
                                           5e-5, 1e-4, 2e-4, 5e-4, 1e-3,
                                           1e-2};
  return kBounds;
}

}  // namespace

void Network::set_export_interval(double interval_s,
                                  std::size_t ring_capacity) {
  if (!events_.empty()) {
    throw std::logic_error("set_export_interval: event queue must be idle");
  }
  if (interval_s <= 0.0) {
    if (obs_ != nullptr) {
      obs_->exporter.reset();
      obs_->delivered_latency = {};
    }
    return;
  }
  if (ring_capacity == 0) {
    throw std::invalid_argument(
        "set_export_interval: ring_capacity must be > 0");
  }
  set_observability(true);
  // Registered here — not in set_observability — so snapshots of
  // export-free runs keep their exact pre-export byte layout.
  obs_->delivered_latency = obs_->registry.histogram(
      "net.delivered.latency_s", "hydra_delivered_latency_seconds", {},
      delivered_latency_bounds());
  absorb_shard_metrics();
  obs_->exporter = std::make_unique<obs::ExportScheduler>(
      interval_s, events_.now() + interval_s, delivered_latency_bounds(),
      ring_capacity);
  // Anchor the delta baseline at the arm point: the first window reports
  // activity since arming, not since process start.
  obs_->exporter->rebaseline(export_cumulative());
}

void Network::set_export_callback(obs::ExportScheduler::TickCallback cb) {
  if (obs_ == nullptr || obs_->exporter == nullptr) {
    throw std::logic_error(
        "streaming export is off; call set_export_interval first");
  }
  obs_->exporter->set_on_tick(std::move(cb));
}

std::string Network::export_prometheus() {
  collect_metrics();  // throws while observability is off; absorbs shards
  std::vector<obs::PromFamily> extra;
  if (obs_->live != nullptr) obs_->live->topk->prom_families(extra);
  return obs::to_prometheus(obs_->registry, extra);
}

std::string Network::window_series_json() const {
  if (obs_ == nullptr || obs_->exporter == nullptr) {
    throw std::logic_error(
        "streaming export is off; call set_export_interval first");
  }
  return obs_->exporter->series_json();
}

// ---- live observability plane ---------------------------------------------

void Network::arm_live_obs(const LiveObsOptions& opts) {
  if (!events_.empty()) {
    throw std::logic_error("arm_live_obs: event queue must be idle");
  }
  if (obs_ == nullptr || obs_->exporter == nullptr) {
    throw std::logic_error(
        "arm_live_obs: streaming export must be armed first "
        "(set_export_interval)");
  }
  auto live = std::make_unique<ObsState::LiveObs>();
  live->opts = opts;
  obs::TopKConfig cfg;
  cfg.k = opts.topk_k;
  cfg.session_net = opts.session_net;
  cfg.session_mask = opts.session_mask;
  std::vector<std::string> props;
  props.reserve(deployments_.size());
  for (const auto& d : deployments_) props.push_back(d.checker->name);
  live->topk = std::make_unique<obs::TopKAttribution>(cfg, std::move(props));
  obs_->live = std::move(live);
}

void Network::disarm_live_obs() {
  if (obs_ != nullptr) obs_->live.reset();
}

void Network::set_live_publisher(obs::SnapshotPublisher* publisher) {
  if (obs_ == nullptr || obs_->live == nullptr) {
    throw std::logic_error(
        "set_live_publisher: live obs is off; call arm_live_obs first");
  }
  obs_->live->publisher = publisher;
}

const obs::HealthVerdict& Network::last_health() const {
  if (obs_ == nullptr || obs_->live == nullptr) {
    throw std::logic_error("last_health: live obs is off");
  }
  return obs_->live->health;
}

std::string Network::topk_json() const {
  if (obs_ == nullptr || obs_->live == nullptr) {
    throw std::logic_error("topk_json: live obs is off");
  }
  return obs_->live->topk->to_json();
}

void Network::update_live_after_tick() {
  ObsState::LiveObs& live = *obs_->live;
  const obs::ExportScheduler& sched = *obs_->exporter;
  live.health = obs::evaluate_health(sched.windows(), sched.latency_bounds(),
                                     live.opts.health);
  // Gauges registered here (not at arm time) keep export-only runs
  // byte-identical to pre-live releases; values are tick-committed state,
  // so they are identical across engines.
  obs::Registry& reg = obs_->registry;
  reg.gauge("health.status", "hydra_health_status", {})
      .set(static_cast<double>(static_cast<int>(live.health.status)));
  reg.gauge("health.reject_rate", "hydra_health_reject_rate", {})
      .set(live.health.reject_rate);
  reg.gauge("health.latency_p99_s", "hydra_health_latency_p99_seconds", {})
      .set(live.health.latency_p99_s);
  reg.gauge("health.fault_drop_rate", "hydra_health_fault_drop_rate", {})
      .set(live.health.fault_drop_rate);
  reg.gauge("health.cold_suppression_rate",
            "hydra_health_cold_suppression_rate", {})
      .set(live.health.cold_suppression_rate);
  if (live.publisher == nullptr) return;

  obs::LiveSnapshot snap;
  snap.tick_index = sched.captured();
  snap.sim_time = events_.now();
  collect_metrics();
  std::vector<obs::PromFamily> extra;
  live.topk->prom_families(extra);
  snap.metrics_text = obs::to_prometheus(reg, extra);
  snap.series_json = sched.series_json();
  snap.health_json = live.health.to_json();
  snap.violations_json = violation_reports_json();
  snap.topk_json = live.topk->to_json();
  snap.snapshot_text = obs_snapshot();
  live.publisher->publish(std::move(snap));
}

// ---- obs snapshot/restore -------------------------------------------------

std::string Network::obs_snapshot() {
  if (obs_ == nullptr) {
    throw std::logic_error("obs_snapshot: observability is off");
  }
  std::string out = "hydra-obs-snapshot v1\n";
  append_obs_body(out);
  out += "end\n";
  return out;
}

namespace {

// Checker source embedded in a one-line snapshot record: newline and
// backslash are the only characters the line format cannot carry.
std::string escape_source(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  for (const char c : src) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string unescape_source(const std::string& esc) {
  std::string out;
  out.reserve(esc.size());
  for (std::size_t i = 0; i < esc.size(); ++i) {
    if (esc[i] == '\\' && i + 1 < esc.size()) {
      ++i;
      out += esc[i] == 'n' ? '\n' : esc[i];
    } else {
      out += esc[i];
    }
  }
  return out;
}

}  // namespace

std::string Network::full_snapshot() {
  if (obs_ == nullptr) {
    throw std::logic_error("full_snapshot: observability is off");
  }
  if (swap_in_progress()) {
    throw std::logic_error(
        "full_snapshot: rolling swap sweep in flight; run the queue until "
        "the sweep commits, then snapshot the quiesced state");
  }
  // Flush transparent lookup caches (checker tables and forwarding
  // programs) so the snapshot point is a cache-cold boundary on BOTH sides
  // of a restart: the restored process starts cold by construction, and a
  // warm cache here would put cache-hit counters on diverging trajectories.
  // Caches never change lookup results, only which counter ticks.
  for (Deployment& d : deployments_) {
    for (p4rt::CheckerState& state : d.per_switch) {
      for (p4rt::Table& tab : state.tables) tab.invalidate_cache();
    }
  }
  {
    std::vector<const ForwardingProgram*> flushed;
    for (const auto& prog : programs_) {
      if (prog == nullptr) continue;
      bool seen = false;
      for (const ForwardingProgram* p : flushed) seen = seen || p == prog.get();
      if (seen) continue;
      flushed.push_back(prog.get());
      prog->invalidate_caches();
    }
  }
  using obs::detail::format_double;
  std::string out = "hydra-obs-snapshot v2\n";
  out += "clock " + format_double(events_.now()) + " " +
         (obs_->exporter != nullptr
              ? format_double(obs_->exporter->next_tick())
              : std::string("0")) +
         " " + std::to_string(next_packet_id_) + " " +
         (obs_->exporter != nullptr
              ? std::to_string(obs_->exporter->ticks()) + " " +
                    format_double(obs_->exporter->first_tick())
              : std::string("0 0")) +
         "\n";
  for (std::size_t g = 0; g < generations_.size(); ++g) {
    out += "gen " + std::to_string(g) + " " +
           (generations_[g].retired ? "1" : "0") + " " +
           generations_[g].property + "\n";
  }
  for (std::size_t si = 0; si < deployments_.size(); ++si) {
    const Deployment& d = deployments_[si];
    const compiler::CompileOptions& o = d.checker->options;
    out += "dep " + std::to_string(si) + " " + std::to_string(d.generation) +
           " " + (d.live ? "1" : "0") + " " +
           std::to_string(static_cast<int>(o.placement)) + " " +
           (o.byte_aligned_layout ? "1" : "0") + " " +
           std::to_string(static_cast<int>(o.dialect)) + " " +
           std::to_string(o.baseline.stages) + " " +
           format_double(o.baseline.phv_percent) + " " + o.baseline.name +
           " " + d.checker->name + "\n";
    out += "src " + std::to_string(si) + " " +
           escape_source(d.checker->source) + "\n";
    if (!d.live) continue;
    for (int sw = 0; sw < topo_.node_count(); ++sw) {
      if (topo_.node(sw).kind != NodeKind::kSwitch) continue;
      const p4rt::CheckerState& state =
          d.per_switch[static_cast<std::size_t>(sw)];
      for (std::size_t ti = 0; ti < state.tables.size(); ++ti) {
        std::ostringstream ts;
        p4rt::serialize_table(state.tables[ti], ts);
        out += "tab " + std::to_string(si) + " " + std::to_string(sw) + " " +
               std::to_string(ti) + " " + ts.str() + "\n";
      }
      for (std::size_t ri = 0; ri < state.registers.size(); ++ri) {
        std::ostringstream rs;
        p4rt::serialize_registers(state.registers[ri], rs);
        out += "reg " + std::to_string(si) + " " + std::to_string(sw) + " " +
               std::to_string(ri) + " " + rs.str() + "\n";
      }
    }
  }
  // Mutable forwarding state, deduped by shared program instance (keyed by
  // the lowest switch id running it).
  std::vector<const ForwardingProgram*> done;
  for (int sw = 0; sw < topo_.node_count(); ++sw) {
    const ForwardingProgram* prog =
        programs_[static_cast<std::size_t>(sw)].get();
    if (prog == nullptr || !prog->has_state()) continue;
    bool seen = false;
    for (const ForwardingProgram* p : done) seen = seen || p == prog;
    if (seen) continue;
    done.push_back(prog);
    std::ostringstream fs;
    prog->save_state(fs);
    out += "fwd " + std::to_string(sw) + " " + fs.str() + "\n";
  }
  // Per-link cumulative counters and the serialization clock: restoring
  // them keeps the per-link gauges and future queueing byte-identical.
  for (std::size_t li = 0; li < links_.size(); ++li) {
    for (int dir = 0; dir < 2; ++dir) {
      const Link::DirStats& s = links_[li].stats(dir);
      out += "link " + std::to_string(li) + " " + std::to_string(dir) + " " +
             std::to_string(s.packets) + " " + std::to_string(s.bytes) + " " +
             std::to_string(s.drops) + " " + format_double(s.busy_until) +
             " " + format_double(s.busy_time) + "\n";
    }
  }
  // The export scheduler's delta baseline (totals as of the last fired
  // tick). Events between that tick and this snapshot are in no window
  // yet; without this record a restored process would re-anchor the
  // baseline at the snapshot totals and silently drop them from its first
  // post-restore window.
  if (obs_->exporter != nullptr) {
    const obs::ExportCumulative& b = obs_->exporter->baseline();
    out += "base " + std::to_string(b.injected) + " " +
           std::to_string(b.delivered) + " " + std::to_string(b.rejected) +
           " " + std::to_string(b.fwd_dropped) + " " +
           std::to_string(b.queue_dropped) + " " +
           std::to_string(b.fault_dropped) + " " + std::to_string(b.reports) +
           " " + std::to_string(b.decode_rejects) + " " +
           std::to_string(b.cold_suppressed) + "\n";
    out += "blat " + std::to_string(b.latency_count) + " " +
           format_double(b.latency_sum) + " " +
           std::to_string(b.latency_buckets.size());
    for (std::uint64_t v : b.latency_buckets) out += " " + std::to_string(v);
    out += "\n";
    for (const auto& p : b.properties) {
      out += "bprop " + p.name + " " + std::to_string(p.rejects) + " " +
             std::to_string(p.reports) + " " + std::to_string(p.check_runs) +
             " " + std::to_string(p.tele_runs) + "\n";
    }
  }
  append_obs_body(out);
  out += "end\n";
  return out;
}

void Network::append_obs_body(std::string& out) {
  using obs::detail::format_double;
  absorb_shard_metrics();
  out += "sim injected " + std::to_string(counters_.injected) + "\n";
  out += "sim delivered " + std::to_string(counters_.delivered) + "\n";
  out += "sim rejected " + std::to_string(counters_.rejected) + "\n";
  out += "sim fwd_dropped " + std::to_string(counters_.fwd_dropped) + "\n";
  out += "sim queue_dropped " + std::to_string(counters_.queue_dropped) + "\n";
  out += "sim fault_dropped " + std::to_string(counters_.fault_dropped) + "\n";
  out += obs_->registry.snapshot_text();
  if (obs_->exporter != nullptr) {
    const obs::ExportScheduler& sched = *obs_->exporter;
    out += "series " + std::to_string(sched.captured()) + "\n";
    for (const obs::WindowSample& w : sched.windows()) {
      const obs::ExportCumulative& d = w.delta;
      out += "window " + std::to_string(w.index) + " " +
             format_double(w.t0) + " " + format_double(w.t1) + " " +
             std::to_string(d.injected) + " " + std::to_string(d.delivered) +
             " " + std::to_string(d.rejected) + " " +
             std::to_string(d.fwd_dropped) + " " +
             std::to_string(d.queue_dropped) + " " +
             std::to_string(d.fault_dropped) + " " +
             std::to_string(d.reports) + " " +
             std::to_string(d.decode_rejects) + " " +
             std::to_string(d.cold_suppressed) + " " + format_double(w.pps) +
             " " + format_double(w.rejects_per_s) + "\n";
      out += "wlat " + std::to_string(d.latency_count) + " " +
             format_double(d.latency_sum) + " " + format_double(w.latency_p50) +
             " " + format_double(w.latency_p90) + " " +
             format_double(w.latency_p99) + " " +
             std::to_string(d.latency_buckets.size());
      for (std::uint64_t b : d.latency_buckets) out += " " + std::to_string(b);
      out += "\n";
      for (const auto& p : d.properties) {
        out += "wprop " + p.name + " " + std::to_string(p.rejects) + " " +
               std::to_string(p.reports) + " " + std::to_string(p.check_runs) +
               " " + std::to_string(p.tele_runs) + "\n";
      }
    }
  }
  if (obs_->live != nullptr) out += obs_->live->topk->snapshot_text();
}

namespace {

[[noreturn]] void bad_snapshot(const std::string& line) {
  throw std::invalid_argument("obs_restore: malformed snapshot line '" + line +
                              "'");
}

}  // namespace

void Network::obs_restore(const std::string& text) {
  if (!events_.empty()) {
    throw std::logic_error("obs_restore: event queue must be idle");
  }
  if (obs_ == nullptr) {
    throw std::logic_error(
        "obs_restore: arm observability (and export/live obs, if wanted) "
        "before restoring");
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      (line != "hydra-obs-snapshot v1" && line != "hydra-obs-snapshot v2")) {
    throw std::invalid_argument("obs_restore: unrecognized snapshot header");
  }
  const bool v2 = line == "hydra-obs-snapshot v2";
  if (v2 && !deployments_.empty()) {
    throw std::logic_error(
        "obs_restore: a full-state (v2) snapshot rebuilds the deployment "
        "set; restore into a scenario that has not deployed any checker");
  }
  std::deque<obs::WindowSample> windows;
  std::uint64_t captured = 0;
  bool have_series = false;
  bool saw_end = false;
  // v2 structural state (clock / generation table / pending dep record).
  double now = 0.0;
  double next_tick = 0.0;
  std::uint64_t npid = 1;
  std::uint64_t tick_count = 0;
  double first_tick = 0.0;
  bool have_clock = false;
  obs::ExportCumulative base_cum;
  bool have_base = false;
  struct PendingDep {
    bool valid = false;
    int slot = -1;
    std::uint32_t gen = 0;
    bool live = false;
    compiler::CompileOptions options;
    std::string name;
  } pending;
  // Fires at the first v1-body keyword: the deployment set is complete, so
  // properties, stale counters, obs wiring, and top-K labels can be
  // rebuilt before any counter/sketch values land.
  bool structural_done = !v2;
  const auto finish_structural = [&]() {
    if (structural_done) return;
    structural_done = true;
    if (pending.valid) {
      throw std::invalid_argument(
          "obs_restore: dep record without matching src line");
    }
    known_properties_.clear();
    for (const GenerationInfo& g : generations_) note_property(g.property);
    stale_counters_.assign(generations_.size(), obs::Counter{});
    rewire_observability();  // re-registers retired-generation counters
    if (obs_->live != nullptr && obs_->live->topk != nullptr) {
      for (std::size_t si = 0; si < deployments_.size(); ++si) {
        obs_->live->topk->redefine_property(static_cast<int>(si),
                                            deployments_[si].checker->name);
      }
    }
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "end") {
      finish_structural();
      saw_end = true;
      break;
    }
    const bool structural = kw == "clock" || kw == "gen" || kw == "dep" ||
                            kw == "src" || kw == "tab" || kw == "reg" ||
                            kw == "fwd" || kw == "link" || kw == "base" ||
                            kw == "blat" || kw == "bprop";
    if (structural) {
      if (!v2 || structural_done) bad_snapshot(line);
      if (kw == "clock") {
        ls >> now >> next_tick >> npid >> tick_count >> first_tick;
        if (ls.fail()) bad_snapshot(line);
        have_clock = true;
      } else if (kw == "gen") {
        std::size_t g = 0;
        int retired = 0;
        std::string prop;
        ls >> g >> retired >> prop;
        if (ls.fail() || g != generations_.size() || prop.empty()) {
          bad_snapshot(line);
        }
        generations_.push_back({nullptr, std::move(prop), retired != 0});
      } else if (kw == "dep") {
        int slot = -1;
        int live = 0;
        int placement = 0;
        int aligned = 0;
        int dialect = 0;
        ls >> slot >> pending.gen >> live >> placement >> aligned >> dialect >>
            pending.options.baseline.stages >>
            pending.options.baseline.phv_percent >>
            pending.options.baseline.name >> pending.name;
        if (ls.fail() || pending.valid ||
            slot != static_cast<int>(deployments_.size()) ||
            pending.gen >= generations_.size() ||
            generations_[pending.gen].property != pending.name ||
            placement < 0 ||
            placement > static_cast<int>(compiler::CheckPlacement::kAuto) ||
            dialect < 0 ||
            dialect > static_cast<int>(compiler::P4Dialect::kV1Model)) {
          bad_snapshot(line);
        }
        pending.valid = true;
        pending.slot = slot;
        pending.live = live != 0;
        pending.options.placement =
            static_cast<compiler::CheckPlacement>(placement);
        pending.options.byte_aligned_layout = aligned != 0;
        pending.options.dialect = static_cast<compiler::P4Dialect>(dialect);
      } else if (kw == "src") {
        int slot = -1;
        ls >> slot;
        if (ls.fail() || !pending.valid || slot != pending.slot) {
          bad_snapshot(line);
        }
        std::string esc;
        std::getline(ls, esc);
        if (!esc.empty() && esc.front() == ' ') esc.erase(0, 1);
        auto sp = std::make_shared<const compiler::CompiledChecker>(
            compiler::compile_checker(unescape_source(esc), pending.name,
                                      pending.options));
        deployments_.emplace_back();
        Deployment& d = deployments_.back();
        d.checker = sp;
        d.tele_wire_bytes = sp->layout.wire_bytes;
        d.generation = pending.gen;
        d.live = pending.live;
        d.phase.assign(static_cast<std::size_t>(topo_.node_count()),
                       kPhaseRetired);
        if (d.live) {
          d.per_switch.assign(static_cast<std::size_t>(topo_.node_count()),
                              {});
          for (int i = 0; i < topo_.node_count(); ++i) {
            if (topo_.node(i).kind != NodeKind::kSwitch) continue;
            d.per_switch[static_cast<std::size_t>(i)] =
                p4rt::make_checker_state(sp->ir);
            d.phase[static_cast<std::size_t>(i)] = kPhaseEnabled;
          }
        }
        generations_[d.generation].checker = sp;
        for (auto& ctx : contexts_) add_context_scratch(ctx, d);
        pending.valid = false;
      } else if (kw == "tab" || kw == "reg") {
        int slot = -1;
        int sw = -1;
        std::size_t idx = 0;
        ls >> slot >> sw >> idx;
        if (ls.fail() || slot < 0 ||
            slot >= static_cast<int>(deployments_.size()) || sw < 0 ||
            sw >= topo_.node_count() ||
            topo_.node(sw).kind != NodeKind::kSwitch) {
          bad_snapshot(line);
        }
        Deployment& d = deployments_[static_cast<std::size_t>(slot)];
        if (!d.live || d.per_switch.empty()) bad_snapshot(line);
        p4rt::CheckerState& state =
            d.per_switch[static_cast<std::size_t>(sw)];
        if (kw == "tab") {
          if (idx >= state.tables.size()) bad_snapshot(line);
          p4rt::deserialize_table(state.tables[idx], ls);
        } else {
          if (idx >= state.registers.size()) bad_snapshot(line);
          p4rt::deserialize_registers(state.registers[idx], ls);
        }
      } else if (kw == "fwd") {
        int sw = -1;
        ls >> sw;
        if (ls.fail() || sw < 0 || sw >= topo_.node_count()) {
          bad_snapshot(line);
        }
        ForwardingProgram* prog = programs_[static_cast<std::size_t>(sw)].get();
        if (prog == nullptr || !prog->has_state()) {
          throw std::invalid_argument(
              "obs_restore: fwd state for switch " + std::to_string(sw) +
              ", whose program keeps none (scenario mismatch)");
        }
        prog->load_state(ls);
      } else if (kw == "link") {
        std::size_t li = 0;
        int dir = -1;
        Link::DirStats s;
        ls >> li >> dir >> s.packets >> s.bytes >> s.drops >> s.busy_until >>
            s.busy_time;
        if (ls.fail() || li >= links_.size() || dir < 0 || dir > 1) {
          bad_snapshot(line);
        }
        links_[li].restore_stats(dir, s);
      } else if (kw == "base") {
        ls >> base_cum.injected >> base_cum.delivered >> base_cum.rejected >>
            base_cum.fwd_dropped >> base_cum.queue_dropped >>
            base_cum.fault_dropped >> base_cum.reports >>
            base_cum.decode_rejects >> base_cum.cold_suppressed;
        if (ls.fail()) bad_snapshot(line);
        have_base = true;
      } else if (kw == "blat") {
        std::size_t n = 0;
        ls >> base_cum.latency_count >> base_cum.latency_sum >> n;
        if (ls.fail()) bad_snapshot(line);
        base_cum.latency_buckets.assign(n, 0);
        for (std::size_t i = 0; i < n; ++i) ls >> base_cum.latency_buckets[i];
        if (ls.fail()) bad_snapshot(line);
      } else {  // bprop
        obs::ExportCumulative::Property p;
        ls >> p.name >> p.rejects >> p.reports >> p.check_runs >> p.tele_runs;
        if (ls.fail()) bad_snapshot(line);
        base_cum.properties.push_back(std::move(p));
      }
      continue;
    }
    finish_structural();
    if (kw == "sim") {
      std::string which;
      std::uint64_t v = 0;
      ls >> which >> v;
      if (ls.fail()) bad_snapshot(line);
      if (which == "injected") counters_.injected += v;
      else if (which == "delivered") counters_.delivered += v;
      else if (which == "rejected") counters_.rejected += v;
      else if (which == "fwd_dropped") counters_.fwd_dropped += v;
      else if (which == "queue_dropped") counters_.queue_dropped += v;
      else if (which == "fault_dropped") counters_.fault_dropped += v;
      else bad_snapshot(line);
    } else if (kw == "counter") {
      std::string name;
      std::uint64_t v = 0;
      ls >> name >> v;
      if (ls.fail()) bad_snapshot(line);
      obs_->registry.restore_counter(name, v);
    } else if (kw == "hist") {
      std::string name;
      std::uint64_t count = 0;
      double sum = 0.0;
      std::size_t n = 0;
      ls >> name >> count >> sum >> n;
      if (ls.fail()) bad_snapshot(line);
      std::vector<std::uint64_t> buckets(n, 0);
      for (std::size_t i = 0; i < n; ++i) ls >> buckets[i];
      if (ls.fail()) bad_snapshot(line);
      obs_->registry.restore_histogram(name, count, sum, buckets);
    } else if (kw == "series") {
      ls >> captured;
      if (ls.fail()) bad_snapshot(line);
      have_series = true;
    } else if (kw == "window") {
      obs::WindowSample w;
      obs::ExportCumulative& d = w.delta;
      ls >> w.index >> w.t0 >> w.t1 >> d.injected >> d.delivered >>
          d.rejected >> d.fwd_dropped >> d.queue_dropped >> d.fault_dropped >>
          d.reports >> d.decode_rejects >> d.cold_suppressed >> w.pps >>
          w.rejects_per_s;
      if (ls.fail()) bad_snapshot(line);
      windows.push_back(std::move(w));
    } else if (kw == "wlat") {
      if (windows.empty()) bad_snapshot(line);
      obs::WindowSample& w = windows.back();
      std::size_t n = 0;
      ls >> w.delta.latency_count >> w.delta.latency_sum >> w.latency_p50 >>
          w.latency_p90 >> w.latency_p99 >> n;
      if (ls.fail()) bad_snapshot(line);
      w.delta.latency_buckets.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) ls >> w.delta.latency_buckets[i];
      if (ls.fail()) bad_snapshot(line);
    } else if (kw == "wprop") {
      if (windows.empty()) bad_snapshot(line);
      obs::ExportCumulative::Property p;
      ls >> p.name >> p.rejects >> p.reports >> p.check_runs >> p.tele_runs;
      if (ls.fail()) bad_snapshot(line);
      windows.back().delta.properties.push_back(std::move(p));
    } else if (kw == "topk" || kw == "tke") {
      // Sketch state is only meaningful with live obs re-armed; otherwise
      // the lines are structural no-ops.
      if (obs_->live != nullptr) obs_->live->topk->restore_line(line);
    } else {
      bad_snapshot(line);
    }
  }
  if (!saw_end) {
    throw std::invalid_argument("obs_restore: truncated snapshot");
  }
  if (v2 && have_clock) {
    // Resume the snapshot's time domain: the clock, packet-id stream, and
    // (below) export-tick boundaries continue exactly where the
    // snapshotted run left off.
    events_.advance_now(now);
    next_packet_id_ = npid;
  }
  if (obs_->exporter != nullptr) {
    // Re-anchor deltas at the restored totals (the arm-time baseline was
    // taken before the restore folded the old counts in), then reinstate
    // the captured ring. v1 keeps the tick clock in this process's fresh
    // virtual-time domain; v2 re-anchors it into the snapshot's.
    obs_->exporter->rebaseline(export_cumulative());
    if (have_series) {
      obs_->exporter->restore_series(captured, std::move(windows));
    }
    if (v2 && have_clock && next_tick > 0.0) {
      obs_->exporter->resume_clock(first_tick, tick_count);
    }
    if (v2 && have_base) {
      // The snapshotted run's delta baseline (totals at its last fired
      // tick) — NOT the snapshot-time totals: events between the two are
      // in no window yet and must land in the first post-restore window.
      obs_->exporter->restore_baseline(std::move(base_cum));
    }
    if (obs_->live != nullptr) {
      obs_->live->health = obs::evaluate_health(
          obs_->exporter->windows(), obs_->exporter->latency_bounds(),
          obs_->live->opts.health);
    }
  }
}

obs::ExportCumulative Network::export_cumulative() const {
  obs::ExportCumulative cum;
  cum.injected = counters_.injected;
  cum.delivered = counters_.delivered;
  cum.rejected = counters_.rejected;
  cum.fwd_dropped = counters_.fwd_dropped;
  cum.queue_dropped = counters_.queue_dropped;
  cum.fault_dropped = counters_.fault_dropped;
  if (obs_ == nullptr) return cum;
  const obs::Registry& reg = obs_->registry;
  // One row per property ever deployed (sorted unique), not per slot:
  // shared-checker deployments count once and retired properties keep
  // their attribution rows across undeploys and restores.
  for (const std::string& cn : known_properties_) {
    obs::ExportCumulative::Property p;
    p.name = cn;
    p.rejects = reg.counter_value("checker." + cn + ".rejects");
    p.reports = reg.counter_value("checker." + cn + ".reports");
    p.check_runs = reg.counter_value("checker." + cn + ".check_runs");
    p.tele_runs = reg.counter_value("checker." + cn + ".tele_runs");
    cum.properties.push_back(std::move(p));
  }
  // Total reports raised, from the monotone per-property counters
  // (reports() itself can be cleared mid-run, which would break deltas).
  for (const auto& p : cum.properties) cum.reports += p.reports;
  // Burn-rate inputs for health evaluation, from the same deduped
  // per-property names so shared-checker deployments count once.
  for (const auto& p : cum.properties) {
    cum.decode_rejects +=
        reg.counter_value("checker." + p.name + ".tele_decode_rejects");
    cum.cold_suppressed +=
        reg.counter_value("checker." + p.name + ".cold_suppressed");
  }
  if (const obs::HistogramData* h = obs_->delivered_latency.data()) {
    cum.latency_buckets = h->buckets;
    cum.latency_count = h->count;
    cum.latency_sum = h->sum;
  }
  return cum;
}

void Network::export_tick_until(SimTime t) {
  obs::ExportScheduler* sched = export_scheduler_ptr();
  if (sched == nullptr) return;
  while (sched->next_tick() <= t) {
    // Engines call this between committed events with workers quiesced, so
    // after the merge the registry totals equal the serial ones.
    absorb_shard_metrics();
    sched->tick(export_cumulative());
    if (obs_->live != nullptr) update_live_after_tick();
  }
}

obs::Registry* Network::registry_for_switch(int sw) {
  return contexts_[static_cast<std::size_t>(shard_of(sw))].sink;
}

void Network::rewire_observability() {
  if (obs_ == nullptr) {
    // Detach every handle; none may outlive the registry it points into.
    for (auto& ctx : contexts_) {
      for (auto& pd : ctx.deps) {
        pd.init_runs = {};
        pd.tele_runs = {};
        pd.check_runs = {};
        pd.rejects = {};
        pd.reports = {};
        pd.decode_rejects = {};
        pd.decode_recovered = {};
        pd.cold_suppr = {};
        pd.interp->attach_metrics({});
        pd.interp->set_provenance(nullptr);
      }
      ctx.sink = nullptr;
      ctx.shadow.reset();
    }
    for (auto& d : deployments_) {
      for (auto& state : d.per_switch) {
        for (auto& table : state.tables) table.attach_metrics({});
      }
    }
    for (int i = 0; i < topo_.node_count(); ++i) {
      ForwardingProgram* prog = programs_[static_cast<std::size_t>(i)].get();
      if (prog != nullptr) prog->attach_metrics_sharded(nullptr);
    }
    return;
  }

  // Shard sinks: shard 0 (and the serial engine's only context) writes the
  // main registry directly; other shards write shadow registries merged at
  // drain barriers. Names are identical, so merging preserves the
  // process-wide aggregate semantics.
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    if (i == 0) {
      contexts_[i].shadow.reset();
      contexts_[i].sink = &obs_->registry;
    } else {
      contexts_[i].shadow = std::make_unique<obs::Registry>();
      contexts_[i].sink = contexts_[i].shadow.get();
    }
  }

  // Per-property counters are registered under their legacy flat names
  // (the JSON/CSV snapshot key, unchanged byte-for-byte) with a structured
  // Prometheus identity layered on top: one family per counter kind,
  // attributed by a property="<checker>" label.
  for (auto& ctx : contexts_) {
    obs::Registry& reg = *ctx.sink;
    for (std::size_t di = 0; di < deployments_.size(); ++di) {
      const std::string& cn = deployments_[di].checker->name;
      const std::vector<obs::Label> by_prop{{"property", cn}};
      ExecContext::PerDeployment& pd = ctx.deps[di];
      pd.init_runs = reg.counter("checker." + cn + ".init_runs",
                                 "hydra_checker_init_runs_total", by_prop);
      pd.tele_runs = reg.counter("checker." + cn + ".tele_runs",
                                 "hydra_checker_tele_runs_total", by_prop);
      pd.check_runs = reg.counter("checker." + cn + ".check_runs",
                                  "hydra_checker_check_runs_total", by_prop);
      pd.rejects = reg.counter("checker." + cn + ".rejects",
                               "hydra_checker_rejects_total", by_prop);
      pd.reports = reg.counter("checker." + cn + ".reports",
                               "hydra_checker_reports_total", by_prop);
      pd.decode_rejects =
          reg.counter("checker." + cn + ".tele_decode_rejects",
                      "hydra_checker_tele_decode_rejects_total", by_prop);
      pd.decode_recovered =
          reg.counter("checker." + cn + ".tele_decode_recovered",
                      "hydra_checker_tele_decode_recovered_total", by_prop);
      pd.cold_suppr = reg.counter("checker." + cn + ".cold_suppressed",
                                  "hydra_checker_cold_suppressed_total",
                                  by_prop);

      p4rt::InterpMetrics im;
      im.instructions = reg.counter("p4rt.interp." + cn + ".instructions",
                                    "hydra_interp_instructions_total",
                                    by_prop);
      im.table_lookups = reg.counter("p4rt.interp." + cn + ".table_lookups",
                                     "hydra_interp_table_lookups_total",
                                     by_prop);
      im.reg_reads = reg.counter("p4rt.interp." + cn + ".reg_reads",
                                 "hydra_interp_reg_reads_total", by_prop);
      im.reg_writes = reg.counter("p4rt.interp." + cn + ".reg_writes",
                                  "hydra_interp_reg_writes_total", by_prop);
      pd.interp->attach_metrics(im);
      // Provenance capture feeds the flight recorder; disarmed (one branch
      // per lookup/register op) unless forensics is on.
      pd.interp->set_provenance(obs_->recorder != nullptr ? &pd.prov
                                                          : nullptr);
    }
  }

  // Checker tables: one aggregate counter set per (checker, table) name;
  // each switch's instance targets the registry of the shard executing it.
  // Retired slots have no per-switch state left to wire.
  for (auto& d : deployments_) {
    if (d.per_switch.empty()) continue;
    for (std::size_t t = 0; t < d.checker->ir.tables.size(); ++t) {
      const std::string& tn = d.checker->ir.tables[t].name;
      const std::string base = "p4rt.table." + d.checker->name + "." + tn;
      const std::vector<obs::Label> by_table{{"property", d.checker->name},
                                             {"table", tn}};
      for (int sw = 0; sw < topo_.node_count(); ++sw) {
        auto& state = d.per_switch[static_cast<std::size_t>(sw)];
        if (t >= state.tables.size()) continue;
        obs::Registry& reg = *registry_for_switch(sw);
        p4rt::TableMetrics tm;
        tm.hits = reg.counter(base + ".hits", "hydra_table_hits_total",
                              by_table);
        tm.misses = reg.counter(base + ".misses", "hydra_table_misses_total",
                                by_table);
        tm.cache_hits = reg.counter(base + ".cache_hits",
                                    "hydra_table_cache_hits_total", by_table);
        state.tables[t].attach_metrics(tm);
      }
    }
  }

  // Forwarding programs (each attached once, however many switches share
  // it): hot-path counters must land in the registry of the shard that
  // executes each switch — see the contract in net/switch_node.hpp.
  std::vector<ForwardingProgram*> done;
  for (int sw = 0; sw < topo_.node_count(); ++sw) {
    ForwardingProgram* prog = programs_[static_cast<std::size_t>(sw)].get();
    if (prog == nullptr) continue;
    bool seen = false;
    for (ForwardingProgram* p : done) seen = seen || p == prog;
    if (seen) continue;
    done.push_back(prog);
    prog->attach_metrics_sharded(
        [this](int switch_id) -> obs::Registry* {
          if (switch_id < 0) return &obs_->registry;
          return registry_for_switch(switch_id);
        });
  }

  // Retired generations' stale-reject counters live in the main registry;
  // re-register so a rebuilt registry (set_observability toggle, restore)
  // keeps the retired-property families present and monotone.
  for (std::uint32_t g = 0; g < generations_.size(); ++g) {
    if (generations_[g].retired) register_stale_counter(g);
  }
  for (const Deployment& d : deployments_) {
    // A retirement sweep in flight: its counter must already be live (see
    // undeploy_rolling) and must survive a rewire mid-sweep.
    if (d.retiring) register_stale_counter(d.generation);
  }

  // Engine phase profiler: main-loop histograms into the main registry,
  // each shard's compute histogram into that shard's sink (same name, so
  // barrier merges aggregate them).
  if (obs_->profiler != nullptr) {
    obs::EngineProfiler& prof = *obs_->profiler;
    if (prof.workers() != engine_workers_) prof.configure(engine_workers_);
    prof.detach();
    prof.attach_main(obs_->registry);
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
      prof.attach_worker(static_cast<int>(i), *contexts_[i].sink);
    }
  }
}

void Network::absorb_shard_metrics() {
  if (obs_ == nullptr) return;
  for (auto& ctx : contexts_) {
    if (ctx.shadow != nullptr) {
      obs_->registry.absorb_counters(*ctx.shadow);
    }
  }
}

void Network::set_observability(bool enabled) {
  if (enabled == (obs_ != nullptr)) return;
  if (!enabled) {
    obs_.reset();
    rewire_observability();  // detaches every handle
    return;
  }
  obs_ = std::make_unique<ObsState>();
  obs::Registry& reg = obs_->registry;
  obs_->switches.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind != NodeKind::kSwitch) continue;
    const std::string base = "net.switch." + topo_.node(i).name;
    const std::vector<obs::Label> by_switch{{"switch", topo_.node(i).name}};
    auto& c = obs_->switches[static_cast<std::size_t>(i)];
    c.forwarded = reg.counter(base + ".forwarded",
                              "hydra_switch_forwarded_total", by_switch);
    c.fwd_dropped = reg.counter(base + ".fwd_dropped",
                                "hydra_switch_fwd_dropped_total", by_switch);
    c.rejected = reg.counter(base + ".rejected",
                             "hydra_switch_rejected_total", by_switch);
  }
  obs_->delivered_hops = reg.histogram(
      "net.delivered.hops", {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0});
  rewire_observability();
}

obs::Registry& Network::metrics() {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "observability is off; call set_observability(true) first");
  }
  absorb_shard_metrics();
  return obs_->registry;
}

obs::TraceSink& Network::trace_sink() {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "observability is off; call set_observability(true) first");
  }
  return obs_->traces;
}

void Network::set_trace_sampler(TraceSampler sampler) {
  set_observability(true);
  obs_->sampler = std::move(sampler);
}

void Network::trace_next(std::size_t n) {
  set_trace_sampler([left = n](const p4rt::Packet&) mutable {
    if (left == 0) return false;
    --left;
    return true;
  });
}

void Network::collect_metrics() {
  obs::Registry& reg = metrics();
  const double now = events_.now();
  reg.gauge("net.time_s").set(now);
  reg.gauge("net.packets.injected")
      .set(static_cast<double>(counters_.injected));
  reg.gauge("net.packets.delivered")
      .set(static_cast<double>(counters_.delivered));
  reg.gauge("net.packets.rejected")
      .set(static_cast<double>(counters_.rejected));
  reg.gauge("net.packets.fwd_dropped")
      .set(static_cast<double>(counters_.fwd_dropped));
  reg.gauge("net.packets.queue_dropped")
      .set(static_cast<double>(counters_.queue_dropped));
  reg.gauge("net.packets.fault_dropped")
      .set(static_cast<double>(counters_.fault_dropped));

  if (faults_ != nullptr) {
    const FaultStats& fs = faults_->stats();
    reg.gauge("fault.loss_drops").set(static_cast<double>(fs.loss_drops));
    reg.gauge("fault.link_down_drops")
        .set(static_cast<double>(fs.link_down_drops));
    reg.gauge("fault.duplicates").set(static_cast<double>(fs.duplicates));
    reg.gauge("fault.reorders").set(static_cast<double>(fs.reorders));
    reg.gauge("fault.corruptions").set(static_cast<double>(fs.corruptions));
    reg.gauge("fault.tele_rejects")
        .set(static_cast<double>(fs.tele_rejects));
    reg.gauge("fault.tele_recovered")
        .set(static_cast<double>(fs.tele_recovered));
    reg.gauge("fault.cold_suppressed")
        .set(static_cast<double>(fs.cold_suppressed));
    reg.gauge("fault.restarts").set(static_cast<double>(fs.restarts));
    reg.gauge("fault.flaps").set(static_cast<double>(fs.flaps));
    reg.gauge("fault.delayed_pushes")
        .set(static_cast<double>(fs.delayed_pushes));
  }

  for (std::size_t li = 0; li < links_.size(); ++li) {
    const LinkSpec& spec = links_[li].spec();
    for (int dir = 0; dir < 2; ++dir) {
      const PortRef from = dir == 0 ? spec.a : spec.b;
      const PortRef to = dir == 0 ? spec.b : spec.a;
      const std::string dir_name = topo_.node(from.node).name + ":" +
                                   std::to_string(from.port) + "->" +
                                   topo_.node(to.node).name + ":" +
                                   std::to_string(to.port);
      const std::string base = "net.link." + dir_name;
      const std::vector<obs::Label> by_link{{"link", dir_name}};
      const Link::DirStats& s = links_[li].stats(dir);
      reg.gauge(base + ".packets", "hydra_link_packets", by_link)
          .set(static_cast<double>(s.packets));
      reg.gauge(base + ".bytes", "hydra_link_bytes", by_link)
          .set(static_cast<double>(s.bytes));
      reg.gauge(base + ".drops", "hydra_link_drops", by_link)
          .set(static_cast<double>(s.drops));
      reg.gauge(base + ".utilization", "hydra_link_utilization", by_link)
          .set(links_[li].utilization(dir, now));
    }
  }

  for (const auto& d : deployments_) {
    for (std::size_t t = 0; t < d.checker->ir.tables.size(); ++t) {
      std::size_t entries = 0;
      for (const auto& state : d.per_switch) {
        if (t < state.tables.size()) entries += state.tables[t].size();
      }
      const std::string& tn = d.checker->ir.tables[t].name;
      reg.gauge("p4rt.table." + d.checker->name + "." + tn + ".entries",
                "hydra_table_entries",
                {{"property", d.checker->name}, {"table", tn}})
          .set(static_cast<double>(entries));
    }
  }
}

std::string Network::metrics_json() {
  collect_metrics();
  return obs_->registry.to_json();
}

void Network::reset_observability() {
  if (obs_ == nullptr) return;
  absorb_shard_metrics();  // zero the shadows too
  obs_->registry.reset();
  obs_->traces.clear();
  if (obs_->recorder != nullptr) obs_->recorder->clear();
  obs_->violations.clear();
  obs_->violations_seen = 0;
  if (obs_->profiler != nullptr) obs_->profiler->clear();
  if (obs_->exporter != nullptr) {
    // The metrics just went back to zero; re-anchor the delta baseline so
    // the next window does not see a negative (wrapped) delta.
    obs_->exporter->rebaseline(export_cumulative());
  }
}

}  // namespace hydra::net
