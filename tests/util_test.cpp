// Unit tests for src/util: BitVec arithmetic, statistics, RNG, strings.
#include <gtest/gtest.h>

#include <cmath>

#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace hydra {
namespace {

// ---------------------------------------------------------------------------
// BitVec
// ---------------------------------------------------------------------------

TEST(BitVec, ConstructionMasksToWidth) {
  EXPECT_EQ(BitVec(8, 0x1ff).value(), 0xffu);
  EXPECT_EQ(BitVec(1, 3).value(), 1u);
  EXPECT_EQ(BitVec(64, ~0ULL).value(), ~0ULL);
}

TEST(BitVec, RejectsBadWidth) {
  EXPECT_THROW(BitVec(0, 1), std::invalid_argument);
  EXPECT_THROW(BitVec(65, 1), std::invalid_argument);
}

TEST(BitVec, AdditionWraps) {
  EXPECT_EQ(BitVec(8, 255).add(BitVec(8, 1)).value(), 0u);
  EXPECT_EQ(BitVec(8, 250).add(BitVec(8, 10)).value(), 4u);
}

TEST(BitVec, SubtractionWraps) {
  EXPECT_EQ(BitVec(8, 0).sub(BitVec(8, 1)).value(), 255u);
  EXPECT_EQ(BitVec(16, 5).sub(BitVec(16, 7)).value(), 0xfffeu);
}

TEST(BitVec, ResultWidthIsMaxOfOperands) {
  EXPECT_EQ(BitVec(8, 1).add(BitVec(32, 1)).width(), 32);
  EXPECT_EQ(BitVec(32, 1).mul(BitVec(8, 2)).width(), 32);
}

TEST(BitVec, DivisionByZeroSaturates) {
  EXPECT_EQ(BitVec(8, 42).div(BitVec(8, 0)).value(), 255u);
  EXPECT_EQ(BitVec(8, 42).mod(BitVec(8, 0)).value(), 0u);
}

TEST(BitVec, BitwiseOps) {
  EXPECT_EQ(BitVec(8, 0b1100).band(BitVec(8, 0b1010)).value(), 0b1000u);
  EXPECT_EQ(BitVec(8, 0b1100).bor(BitVec(8, 0b1010)).value(), 0b1110u);
  EXPECT_EQ(BitVec(8, 0b1100).bxor(BitVec(8, 0b1010)).value(), 0b0110u);
  EXPECT_EQ(BitVec(8, 0b1100).bnot().value(), 0xf3u);
}

TEST(BitVec, Shifts) {
  EXPECT_EQ(BitVec(8, 0x81).shl(BitVec(8, 1)).value(), 0x02u);
  EXPECT_EQ(BitVec(8, 0x81).shr(BitVec(8, 1)).value(), 0x40u);
  EXPECT_EQ(BitVec(8, 1).shl(BitVec(8, 200)).value(), 0u);
}

TEST(BitVec, AbsDiffAvoidsWraparound) {
  EXPECT_EQ(BitVec(32, 10).abs_diff(BitVec(32, 30)).value(), 20u);
  EXPECT_EQ(BitVec(32, 30).abs_diff(BitVec(32, 10)).value(), 20u);
  EXPECT_EQ(BitVec(8, 0).abs_diff(BitVec(8, 255)).value(), 255u);
}

TEST(BitVec, ComparisonIsByValue) {
  EXPECT_TRUE(BitVec(8, 5) < BitVec(32, 6));
  EXPECT_TRUE(BitVec(8, 5) == BitVec(32, 5));
  EXPECT_TRUE(BitVec(16, 1000) > BitVec(8, 255));
}

TEST(BitVec, ResizeTruncatesAndExtends) {
  EXPECT_EQ(BitVec(32, 0x1234).resize(8).value(), 0x34u);
  EXPECT_EQ(BitVec(8, 0x34).resize(32).value(), 0x34u);
}

TEST(BitVec, Rendering) {
  EXPECT_EQ(BitVec(8, 42).to_string(), "8w42");
  EXPECT_EQ(BitVec(8, 42).to_hex(), "0x2a");
  EXPECT_EQ(BitVec(8, 0).to_hex(), "0x0");
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Stats, OnlineMeanVariance) {
  stats::Online o;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) o.add(x);
  EXPECT_EQ(o.count(), 8u);
  EXPECT_DOUBLE_EQ(o.mean(), 5.0);
  EXPECT_NEAR(o.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(o.min(), 2.0);
  EXPECT_EQ(o.max(), 9.0);
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const auto s = stats::summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  std::vector<double> xs = {1, 5, 2, 8, 3, 9, 4, 7, 6, 10};
  const auto cdf = stats::empirical_cdf(xs, 20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Stats, IncompleteBetaKnownValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(stats::incomplete_beta(1, 1, 0.3), 0.3, 1e-9);
  // I_x(2,2) = 3x^2 - 2x^3.
  EXPECT_NEAR(stats::incomplete_beta(2, 2, 0.5), 0.5, 1e-9);
  EXPECT_NEAR(stats::incomplete_beta(2, 2, 0.25),
              3 * 0.0625 - 2 * 0.015625, 1e-9);
}

TEST(Stats, StudentTCdfSymmetry) {
  EXPECT_NEAR(stats::student_t_cdf(0.0, 10), 0.5, 1e-12);
  EXPECT_NEAR(stats::student_t_cdf(2.0, 10) + stats::student_t_cdf(-2.0, 10),
              1.0, 1e-12);
  // t(df=1) is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(stats::student_t_cdf(1.0, 1), 0.75, 1e-9);
}

TEST(Stats, TTestIdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto r = stats::welch_t_test(a, a);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(Stats, TTestDetectsShiftedMeans) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform() + 0.5);
  }
  const auto r = stats::welch_t_test(a, b);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_LT(r.t, 0.0);
}

TEST(Stats, TTestSameDistributionNotSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  const auto r = stats::welch_t_test(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Stats, StudentAndWelchAgreeOnEqualVariances) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  const auto w = stats::welch_t_test(a, b);
  const auto s = stats::student_t_test(a, b);
  EXPECT_NEAR(w.t, s.t, 1e-9);
  EXPECT_NEAR(w.p_value, s.p_value, 0.01);
}

TEST(Stats, TTestRequiresSamples) {
  EXPECT_THROW(stats::welch_t_test({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / 20000.0, 2.5, 0.1);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(Strings, SplitJoin) {
  const auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(str::join({"x", "y", "z"}, "::"), "x::y::z");
  EXPECT_EQ(str::join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(str::trim("  hi \t\n"), "hi");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
}

TEST(Strings, CountLocIgnoresBlankLines) {
  EXPECT_EQ(str::count_loc("a\n\n  \nb\nc\n"), 3);
  EXPECT_EQ(str::count_loc(""), 0);
}

TEST(Strings, Ipv4RoundTrip) {
  const std::uint32_t addr = str::ipv4_from_string("10.0.2.15");
  EXPECT_EQ(addr, 0x0a00020fu);
  EXPECT_EQ(str::ipv4_to_string(addr), "10.0.2.15");
}

TEST(Strings, Ipv4Malformed) {
  EXPECT_THROW(str::ipv4_from_string("10.0.2"), std::invalid_argument);
  EXPECT_THROW(str::ipv4_from_string("10.0.2.999"), std::invalid_argument);
  EXPECT_THROW(str::ipv4_from_string("a.b.c.d"), std::invalid_argument);
}

}  // namespace
}  // namespace hydra
