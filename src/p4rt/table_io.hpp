// Text (de)serialization of match-action tables and register arrays, the
// building block of the full-state snapshot (net::Network::full_snapshot,
// snapshot format v2 in DESIGN.md §15).
//
// The format is a flat whitespace-separated token stream, embeddable in a
// single snapshot line and parseable with an istream — deliberately dumb
// so both engines, and a hydrad restarted on a different machine, read
// back byte-identical state. Entries serialize in STORAGE order: after
// churn removals the storage order encodes equal-priority tie-breaks
// (see Table::remove_if_key_equals), so replaying inserts in that order
// reproduces lookup winners exactly.
#pragma once

#include <iosfwd>

#include "p4rt/register.hpp"
#include "p4rt/table.hpp"

namespace hydra::p4rt {

// Appends `<nentries> <ndefault> {w v}... {entry}...` to `out`. Action
// names must be whitespace-free (they are identifiers everywhere in this
// codebase); throws std::invalid_argument otherwise rather than emit an
// unparseable stream.
void serialize_table(const Table& table, std::ostream& out);

// Clears `table` and replays the serialized entries. Throws
// std::runtime_error on a malformed stream, std::invalid_argument when an
// entry's arity does not match the table's key spec.
void deserialize_table(Table& table, std::istream& in);

// Sparse register image: `<npairs> {index value}...` for cells that
// diverged from the array's initial value.
void serialize_registers(const RegisterArray& regs, std::ostream& out);

// Resets `regs` then writes back the serialized divergent cells.
void deserialize_registers(RegisterArray& regs, std::istream& in);

}  // namespace hydra::p4rt
