// Live observability plane tests: Space-Saving top-K sketches (determinism,
// eviction semantics, allocation audit), SLO health grading, the scrape
// HTTP server + snapshot publisher, and obs snapshot/restore across a
// simulated daemon restart.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "obs/health.hpp"
#include "obs/httpd.hpp"
#include "obs/topk.hpp"

using namespace hydra;

// ---- Space-Saving sketch --------------------------------------------------

namespace {

obs::TopKKey key_of(std::uint64_t n) { return obs::TopKKey{n, n * 31 + 7}; }

}  // namespace

TEST(SpaceSaving, ExactWithinCapacity) {
  obs::SpaceSaving sk(4);
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t k = 0; k < 4; ++k) sk.add(key_of(k), k + 1);
  }
  const auto ranked = sk.ranked();
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].key, key_of(3));
  EXPECT_EQ(ranked[0].count, 12u);
  EXPECT_EQ(ranked[0].error, 0u);  // never evicted: counts are exact
  EXPECT_EQ(ranked[3].key, key_of(0));
  EXPECT_EQ(ranked[3].count, 3u);
  EXPECT_EQ(sk.total(), 30u);
}

TEST(SpaceSaving, EvictionChargesMinAndInheritsError) {
  obs::SpaceSaving sk(2);
  sk.add(key_of(1), 10);
  sk.add(key_of(2), 3);
  // Full: a new key evicts the minimum (key 2, count 3) and enters with
  // count min+w and error = min.
  sk.add(key_of(3), 1);
  const auto ranked = sk.ranked();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].key, key_of(1));
  EXPECT_EQ(ranked[0].count, 10u);
  EXPECT_EQ(ranked[1].key, key_of(3));
  EXPECT_EQ(ranked[1].count, 4u);
  EXPECT_EQ(ranked[1].error, 3u);
  // Total weight counts the whole stream, not just the survivors.
  EXPECT_EQ(sk.total(), 14u);
}

TEST(SpaceSaving, RankTiesBreakByInsertionStamp) {
  obs::SpaceSaving sk(4);
  sk.add(key_of(7), 5);
  sk.add(key_of(5), 5);
  sk.add(key_of(6), 5);
  const auto ranked = sk.ranked();
  ASSERT_EQ(ranked.size(), 3u);
  // Equal counts rank in first-seen order regardless of key value.
  EXPECT_EQ(ranked[0].key, key_of(7));
  EXPECT_EQ(ranked[1].key, key_of(5));
  EXPECT_EQ(ranked[2].key, key_of(6));
}

TEST(SpaceSaving, DeterministicAcrossIdenticalStreams) {
  auto run = [] {
    obs::SpaceSaving sk(8);
    for (std::uint64_t i = 0; i < 5000; ++i) {
      sk.add(key_of(i % 37), 1 + i % 5);
    }
    std::string out;
    for (const auto& e : sk.ranked()) {
      out += std::to_string(e.key.hi) + ":" + std::to_string(e.count) + ":" +
             std::to_string(e.error) + ";";
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(SpaceSaving, AllocationsOnlyAtConstruction) {
  const std::uint64_t before = obs::topk_allocations();
  obs::SpaceSaving sk(16);
  EXPECT_EQ(obs::topk_allocations(), before + 2);  // slots + index
  // Heavy churn far past capacity: adds must never allocate.
  for (std::uint64_t i = 0; i < 20000; ++i) sk.add(key_of(i % 997));
  EXPECT_EQ(obs::topk_allocations(), before + 2);
  EXPECT_EQ(sk.size(), 16u);
}

TEST(SpaceSaving, RestoreRoundTripPreservesRanking) {
  obs::SpaceSaving sk(4);
  for (std::uint64_t i = 0; i < 1000; ++i) sk.add(key_of(i % 11), 1 + i % 3);

  obs::SpaceSaving re(4);
  // Replay in stamp order, the order snapshot_text emits entries.
  auto entries = sk.ranked();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.stamp < b.stamp; });
  for (const auto& e : entries) re.restore_entry(e.key, e.count, e.error);
  re.restore_total(sk.total());

  const auto a = sk.ranked();
  const auto b = re.ranked();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].error, b[i].error);
  }
  EXPECT_EQ(re.total(), sk.total());
}

TEST(TopKFlowKey, PackUnpackRoundTrip) {
  obs::TopKFlow f;
  f.parsed = true;
  f.src_ip = 0x50000001;
  f.dst_ip = 0x0a000203;
  f.src_port = 40000;
  f.dst_port = 81;
  f.proto = 17;
  const obs::TopKFlow g = obs::unpack_flow(obs::pack_flow(f));
  EXPECT_EQ(g.parsed, f.parsed);
  EXPECT_EQ(g.src_ip, f.src_ip);
  EXPECT_EQ(g.dst_ip, f.dst_ip);
  EXPECT_EQ(g.src_port, f.src_port);
  EXPECT_EQ(g.dst_port, f.dst_port);
  EXPECT_EQ(g.proto, f.proto);
}

// ---- top-K attribution bundle ---------------------------------------------

namespace {

obs::TopKFlow make_flow(std::uint32_t src, std::uint32_t dst) {
  obs::TopKFlow f;
  f.parsed = true;
  f.src_ip = src;
  f.dst_ip = dst;
  f.src_port = 40000;
  f.dst_port = 81;
  f.proto = 17;
  return f;
}

}  // namespace

TEST(TopKAttribution, FeedsSessionAndPropertySketches) {
  obs::TopKConfig cfg;
  cfg.k = 4;
  cfg.session_net = 0x50000000;
  cfg.session_mask = 0xFC000000;
  obs::TopKAttribution att(cfg, {"application_filtering"});

  const std::uint32_t ue = 0x50000001;   // inside the session block
  const std::uint32_t app = 0x0a000203;  // outside it
  for (int i = 0; i < 5; ++i) att.on_delivered(make_flow(ue, app));
  att.on_delivered(make_flow(app, ue));  // session keys on either endpoint
  att.on_rejected(make_flow(ue, app), 1ULL << 0);
  att.on_report(make_flow(ue, app), 0);
  att.on_report(make_flow(ue, app), 3);  // unknown deployment -> "dep3"

  EXPECT_EQ(att.flow_packets().total(), 6u);
  ASSERT_EQ(att.session_packets().size(), 1u);
  EXPECT_EQ(att.session_packets().ranked()[0].count, 6u);
  EXPECT_EQ(att.flow_rejects().total(), 1u);
  EXPECT_EQ(att.property_rejects().total(), 1u);

  const std::string json = att.to_json();
  EXPECT_NE(json.find("\"k\": 4"), std::string::npos);
  EXPECT_NE(json.find("80.0.0.1:40000"), std::string::npos);
  EXPECT_NE(json.find("application_filtering"), std::string::npos);
  EXPECT_NE(json.find("dep3"), std::string::npos);

  std::vector<obs::PromFamily> fams;
  att.prom_families(fams);
  ASSERT_FALSE(fams.empty());
  for (std::size_t i = 1; i < fams.size(); ++i) {
    EXPECT_LT(fams[i - 1].name, fams[i].name);  // sorted, no duplicates
  }
  bool saw_session = false;
  for (const auto& f : fams) {
    EXPECT_EQ(f.name.rfind("hydra_topk_", 0), 0u);
    if (f.name == "hydra_topk_session_packets") {
      saw_session = true;
      ASSERT_EQ(f.samples.size(), 1u);
      EXPECT_EQ(f.samples[0].label_body, "session=\"80.0.0.1\"");
      EXPECT_EQ(f.samples[0].value, "6");
    }
  }
  EXPECT_TRUE(saw_session);
}

TEST(TopKAttribution, SessionAttributionDisabledWithoutMask) {
  obs::TopKAttribution att(obs::TopKConfig{}, {});
  att.on_delivered(make_flow(0x50000001, 0x0a000203));
  EXPECT_EQ(att.flow_packets().total(), 1u);
  EXPECT_EQ(att.session_packets().total(), 0u);
}

TEST(TopKAttribution, SnapshotRestoreRoundTrip) {
  obs::TopKConfig cfg;
  cfg.k = 4;
  cfg.session_net = 0x50000000;
  cfg.session_mask = 0xFC000000;
  obs::TopKAttribution att(cfg, {"p0"});
  for (std::uint32_t i = 0; i < 100; ++i) {
    att.on_delivered(make_flow(0x50000001 + i % 9, 0x0a000203));
    if (i % 7 == 0) att.on_rejected(make_flow(0x50000001, 0x0a000203), 1);
  }

  obs::TopKAttribution re(cfg, {"p0"});
  std::istringstream lines(att.snapshot_text());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(re.restore_line(line)) << line;
  }
  EXPECT_FALSE(re.restore_line("counter foo 1"));  // not topk state
  EXPECT_EQ(re.to_json(), att.to_json());
  EXPECT_EQ(re.snapshot_text(), att.snapshot_text());
}

// ---- health grading -------------------------------------------------------

namespace {

obs::WindowSample window_with(std::uint64_t injected, std::uint64_t rejected,
                              std::uint64_t fault_dropped = 0) {
  obs::WindowSample w;
  w.delta.injected = injected;
  w.delta.rejected = rejected;
  w.delta.fault_dropped = fault_dropped;
  return w;
}

}  // namespace

TEST(Health, EmptyWindowsGradeOk) {
  const auto v = obs::evaluate_health({}, {}, obs::HealthThresholds{});
  EXPECT_EQ(v.status, obs::HealthStatus::kOk);
  EXPECT_TRUE(v.reasons.empty());
  EXPECT_EQ(v.windows_evaluated, 0u);
}

TEST(Health, RejectRateGradesDegradedThenFailing) {
  obs::HealthThresholds t;
  std::deque<obs::WindowSample> w{window_with(1000, 20)};  // 2%
  auto v = obs::evaluate_health(w, {}, t);
  EXPECT_EQ(v.status, obs::HealthStatus::kDegraded);
  ASSERT_EQ(v.reasons.size(), 1u);
  EXPECT_NE(v.reasons[0].find("reject_rate"), std::string::npos);
  EXPECT_DOUBLE_EQ(v.reject_rate, 0.02);

  w.front() = window_with(1000, 150);  // 15%
  v = obs::evaluate_health(w, {}, t);
  EXPECT_EQ(v.status, obs::HealthStatus::kFailing);
  EXPECT_NE(v.to_json().find("\"status\": \"failing\""), std::string::npos);
}

TEST(Health, RollingWindowLimitsEvaluatedSpan) {
  obs::HealthThresholds t;
  t.windows = 2;
  // Old window is terrible, recent two are clean: verdict must only see
  // the configured span.
  std::deque<obs::WindowSample> w{window_with(100, 100), window_with(1000, 0),
                                  window_with(1000, 0)};
  const auto v = obs::evaluate_health(w, {}, t);
  EXPECT_EQ(v.status, obs::HealthStatus::kOk);
  EXPECT_EQ(v.windows_evaluated, 2u);
}

TEST(Health, LatencyThresholdDisabledByDefaultAndGradesWhenSet) {
  // One window whose latency histogram has everything in the overflow
  // bucket beyond 1ms.
  obs::WindowSample w;
  w.delta.injected = 10;
  w.delta.latency_buckets = {0, 100};
  std::deque<obs::WindowSample> ws{w};
  const std::vector<double> bounds{1e-3};

  obs::HealthThresholds t;  // latency thresholds default-disabled
  auto v = obs::evaluate_health(ws, bounds, t);
  EXPECT_EQ(v.status, obs::HealthStatus::kOk);
  EXPECT_DOUBLE_EQ(v.latency_p99_s, 1e-3);  // overflow clamps to last bound

  t.latency_p99_degraded_s = 1e-4;
  v = obs::evaluate_health(ws, bounds, t);
  EXPECT_EQ(v.status, obs::HealthStatus::kDegraded);
  t.latency_p99_failing_s = 5e-4;
  v = obs::evaluate_health(ws, bounds, t);
  EXPECT_EQ(v.status, obs::HealthStatus::kFailing);
}

TEST(Health, ColdSuppressionBurnRate) {
  obs::WindowSample w;
  w.delta.injected = 100;
  w.delta.reports = 1;
  w.delta.cold_suppressed = 9;  // 90% of would-be reports suppressed
  const auto v =
      obs::evaluate_health({w}, {}, obs::HealthThresholds{});
  EXPECT_EQ(v.status, obs::HealthStatus::kFailing);
  EXPECT_DOUBLE_EQ(v.cold_suppression_rate, 0.9);
}

TEST(Health, FaultDropBurnRate) {
  const auto v = obs::evaluate_health({window_with(1000, 0, 30)}, {},
                                      obs::HealthThresholds{});
  EXPECT_EQ(v.status, obs::HealthStatus::kDegraded);
  EXPECT_DOUBLE_EQ(v.fault_drop_rate, 0.03);
}

TEST(Health, StatusNames) {
  EXPECT_STREQ(obs::health_status_name(obs::HealthStatus::kOk), "ok");
  EXPECT_STREQ(obs::health_status_name(obs::HealthStatus::kDegraded),
               "degraded");
  EXPECT_STREQ(obs::health_status_name(obs::HealthStatus::kFailing),
               "failing");
}

// ---- snapshot publisher + HTTP server -------------------------------------

TEST(SnapshotPublisher, EpochAdvancesAndAcquireSeesLatest) {
  obs::SnapshotPublisher pub;
  EXPECT_EQ(pub.acquire(), nullptr);
  EXPECT_EQ(pub.epoch(), 0u);

  int hook_calls = 0;
  pub.set_on_publish([&](const obs::LiveSnapshot&) { ++hook_calls; });
  obs::LiveSnapshot s;
  s.tick_index = 1;
  s.metrics_text = "a";
  pub.publish(s);
  s.tick_index = 2;
  s.metrics_text = "b";
  pub.publish(s);

  EXPECT_EQ(pub.epoch(), 2u);
  EXPECT_EQ(hook_calls, 2);
  auto cur = pub.acquire();
  ASSERT_NE(cur, nullptr);
  EXPECT_EQ(cur->tick_index, 2u);
  EXPECT_EQ(cur->metrics_text, "b");
}

TEST(HttpServer, ServesPublishedSnapshotOnAllRoutes) {
  obs::SnapshotPublisher pub;
  obs::HttpServer server(pub, 0);  // ephemeral port
  ASSERT_GT(server.port(), 0);

  // Before the first publish every route is 503.
  std::string body;
  int status = 0;
  ASSERT_TRUE(obs::http_get(server.port(), "/metrics", &body, &status));
  EXPECT_EQ(status, 503);

  obs::LiveSnapshot s;
  s.tick_index = 7;
  s.metrics_text = "# TYPE x counter\nx 1\n";
  s.series_json = "{\"series\": []}";
  s.health_json = "{\"status\": \"ok\"}";
  s.violations_json = "[]";
  s.topk_json = "{\"k\": 8}";
  s.snapshot_text = "hydra-obs-snapshot v1\nend\n";
  pub.publish(s);

  const std::vector<std::pair<std::string, std::string>> routes{
      {"/metrics", s.metrics_text},   {"/healthz", s.health_json},
      {"/series", s.series_json},     {"/violations", s.violations_json},
      {"/topk", s.topk_json},         {"/snapshot", s.snapshot_text},
  };
  for (const auto& [path, want] : routes) {
    ASSERT_TRUE(obs::http_get(server.port(), path, &body, &status)) << path;
    EXPECT_EQ(status, 200) << path;
    EXPECT_EQ(body, want) << path;
  }
  // Query strings are ignored for routing.
  ASSERT_TRUE(obs::http_get(server.port(), "/metrics?x=1", &body, &status));
  EXPECT_EQ(status, 200);

  ASSERT_TRUE(obs::http_get(server.port(), "/nope", &body, &status));
  EXPECT_EQ(status, 404);
  EXPECT_GE(server.requests_served(), 8u);
  server.stop();
  server.stop();  // idempotent
}

// ---- network integration: live plane + snapshot/restore -------------------

namespace {

// Keeps only counter/histogram family blocks of an exposition: gauges
// (sim time, link utilization, health signals) are recomputed from live
// state after a restart and are deliberately NOT restored.
std::string cumulative_families(const std::string& prom) {
  std::istringstream in(prom);
  std::string line;
  std::string out;
  bool keep = false;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      keep = line.find(" gauge") == std::string::npos;
    }
    if (keep) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

// Leaf-spine scenario with export + live obs armed and enough scheduled
// traffic to cross several export ticks; mirrors obs_test's ExportBed but
// with checker rejects so attribution sketches fill.
struct LiveBed {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);
  int dep = net.deploy(compile_library_checker("stateful_firewall"));

  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }

  LiveBed() {
    const int h0 = fabric.hosts[0][0];
    const int h2 = fabric.hosts[1][0];
    for (const auto& [s, d] : {std::pair{h0, h2}, std::pair{h2, h0}}) {
      net.dict_insert_all(dep, "allowed",
                          {BitVec(32, ip(s)), BitVec(32, ip(d))},
                          {BitVec::from_bool(true)});
    }
    net.set_observability(true);
    net.set_export_interval(5e-6);
    net::Network::LiveObsOptions opts;
    opts.topk_k = 4;
    net.arm_live_obs(opts);
  }

  // Mix of allowed traffic and a flow the firewall rejects.
  void run_traffic(int rounds) {
    const int h0 = fabric.hosts[0][0];
    const int h1 = fabric.hosts[0][1];  // not allowed -> rejects
    const int h2 = fabric.hosts[1][0];
    for (int i = 0; i < rounds; ++i) {
      const double t = net.events().now() + 2e-6 * (i + 1);
      net.events().schedule_at(t, [this, h0, h1, h2, i] {
        net.send_from_host(h0,
                           p4rt::make_udp(ip(h0), ip(h2), 40000, 80, 64));
        if (i % 2 == 0) {
          net.send_from_host(h1,
                             p4rt::make_udp(ip(h1), ip(h2), 41000, 80, 64));
        }
      });
    }
    net.events().run();
  }
};

}  // namespace

TEST(NetworkLiveObs, ArmRequiresExportAndPublishesEachTick) {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  EXPECT_THROW(net.arm_live_obs({}), std::logic_error);

  LiveBed bed;
  EXPECT_TRUE(bed.net.live_obs_armed());
  obs::SnapshotPublisher pub;
  bed.net.set_live_publisher(&pub);
  bed.run_traffic(20);

  const std::uint64_t ticks = bed.net.export_scheduler_ptr()->captured();
  EXPECT_GT(ticks, 2u);
  EXPECT_EQ(pub.epoch(), ticks);
  auto snap = pub.acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->tick_index, ticks);
  // The published exposition carries health gauges and top-K families.
  EXPECT_NE(snap->metrics_text.find("hydra_health_status"),
            std::string::npos);
  EXPECT_NE(snap->metrics_text.find("hydra_topk_flow_packets"),
            std::string::npos);

  const auto& health = bed.net.last_health();
  EXPECT_GT(health.windows_evaluated, 0u);
  EXPECT_NE(bed.net.health_json().find("\"status\""), std::string::npos);
  EXPECT_NE(bed.net.topk_json().find("flow_packets"), std::string::npos);
}

TEST(NetworkLiveObs, GaugesAndTopKAbsentWhenLiveOff) {
  LiveBed bed;
  bed.net.disarm_live_obs();
  EXPECT_FALSE(bed.net.live_obs_armed());
  bed.run_traffic(10);
  const std::string prom = bed.net.export_prometheus();
  EXPECT_EQ(prom.find("hydra_topk_"), std::string::npos);
  EXPECT_THROW(bed.net.last_health(), std::logic_error);
  EXPECT_THROW(bed.net.topk_json(), std::logic_error);
}

TEST(NetworkLiveObs, SnapshotRestoreResumesCountersMonotonically) {
  LiveBed first;
  first.run_traffic(30);
  const std::string saved = first.net.obs_snapshot();
  const std::string prom_before = first.net.export_prometheus();
  const std::uint64_t rejected_before = first.net.counters().rejected;
  ASSERT_GT(first.net.counters().injected, 0u);
  ASSERT_GT(rejected_before, 0u);

  // "Restart": a fresh network restores the snapshot before new traffic.
  LiveBed second;
  second.net.obs_restore(saved);
  // Counters resume at the saved totals, exposition included (gauges are
  // recomputed from the fresh network, so compare cumulative families).
  EXPECT_EQ(second.net.counters().injected, first.net.counters().injected);
  EXPECT_EQ(cumulative_families(second.net.export_prometheus()),
            cumulative_families(prom_before));
  EXPECT_EQ(second.net.topk_json(), first.net.topk_json());
  EXPECT_EQ(second.net.window_series_json(), first.net.window_series_json());

  // New traffic only grows them (monotone across the restart).
  second.run_traffic(10);
  EXPECT_GT(second.net.counters().injected, first.net.counters().injected);
  EXPECT_GE(second.net.counters().rejected, rejected_before);
  // A second snapshot of the resumed network restores cleanly too.
  const std::string again = second.net.obs_snapshot();
  LiveBed third;
  third.net.obs_restore(again);
  EXPECT_EQ(cumulative_families(third.net.export_prometheus()),
            cumulative_families(second.net.export_prometheus()));
}

TEST(NetworkLiveObs, RestoreRejectsMalformedSnapshots) {
  LiveBed bed;
  EXPECT_THROW(bed.net.obs_restore("not a snapshot\n"),
               std::invalid_argument);
  EXPECT_THROW(bed.net.obs_restore("hydra-obs-snapshot v1\n"),
               std::invalid_argument);  // missing end marker
  EXPECT_THROW(bed.net.obs_restore("hydra-obs-snapshot v1\nbogus 1\nend\n"),
               std::invalid_argument);
  // A valid empty snapshot is fine.
  bed.net.obs_restore("hydra-obs-snapshot v1\nend\n");
}
