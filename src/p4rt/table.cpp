#include "p4rt/table.hpp"

#include <stdexcept>

namespace hydra::p4rt {

KeyPattern KeyPattern::exact(BitVec v) {
  KeyPattern p;
  p.mask = BitVec(v.width(), BitVec::mask(v.width()));
  p.value = v;
  return p;
}

KeyPattern KeyPattern::ternary(BitVec v, BitVec m) {
  KeyPattern p;
  p.value = v;
  p.mask = m;
  return p;
}

KeyPattern KeyPattern::wildcard(int width) {
  KeyPattern p;
  p.value = BitVec(width, 0);
  p.mask = BitVec(width, 0);
  return p;
}

KeyPattern KeyPattern::lpm(BitVec v, int prefix_len) {
  KeyPattern p;
  p.value = v;
  p.prefix_len = prefix_len;
  const int w = v.width();
  const std::uint64_t m =
      prefix_len == 0 ? 0 : BitVec::mask(w) << (w - prefix_len);
  p.mask = BitVec(w, m);
  return p;
}

KeyPattern KeyPattern::range(BitVec lo, BitVec hi) {
  KeyPattern p;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Table::Table(std::string name, std::vector<MatchFieldSpec> key_spec)
    : name_(std::move(name)), key_spec_(std::move(key_spec)) {}

void Table::insert(TableEntry entry) {
  if (entry.patterns.size() != key_spec_.size()) {
    throw std::invalid_argument("table '" + name_ + "': entry has " +
                                std::to_string(entry.patterns.size()) +
                                " patterns, expected " +
                                std::to_string(key_spec_.size()));
  }
  entries_.push_back(std::move(entry));
}

void Table::insert_exact(const std::vector<BitVec>& key,
                         std::vector<BitVec> action_data,
                         const std::string& action, int priority) {
  TableEntry e;
  e.priority = priority;
  e.action = action;
  e.action_data = std::move(action_data);
  for (const auto& k : key) e.patterns.push_back(KeyPattern::exact(k));
  insert(std::move(e));
}

int Table::remove_if_key_equals(const std::vector<KeyPattern>& patterns) {
  int removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool same = it->patterns.size() == patterns.size();
    for (std::size_t i = 0; same && i < patterns.size(); ++i) {
      const KeyPattern& a = it->patterns[i];
      const KeyPattern& b = patterns[i];
      same = a.value == b.value && a.mask == b.mask &&
             a.prefix_len == b.prefix_len && a.lo == b.lo && a.hi == b.hi;
    }
    if (same) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool Table::matches(const KeyPattern& p, MatchKind kind, const BitVec& v) {
  switch (kind) {
    case MatchKind::kExact:
      return v.value() == p.value.value();
    case MatchKind::kTernary:
    case MatchKind::kLpm:
      return (v.value() & p.mask.value()) ==
             (p.value.value() & p.mask.value());
    case MatchKind::kRange:
      return p.lo.value() <= v.value() && v.value() <= p.hi.value();
  }
  return false;
}

const TableEntry* Table::lookup(const std::vector<BitVec>& key) const {
  if (key.size() != key_spec_.size()) {
    throw std::invalid_argument("table '" + name_ + "': lookup key arity " +
                                std::to_string(key.size()) + ", expected " +
                                std::to_string(key_spec_.size()));
  }
  const TableEntry* best = nullptr;
  for (const auto& e : entries_) {
    bool hit = true;
    for (std::size_t i = 0; hit && i < key.size(); ++i) {
      hit = matches(e.patterns[i], key_spec_[i].kind, key[i]);
    }
    if (hit && (best == nullptr || e.priority > best->priority)) {
      best = &e;
    }
  }
  return best;
}

void Table::set_default(std::vector<BitVec> action_data) {
  default_data_ = std::move(action_data);
}

}  // namespace hydra::p4rt
