#include "forwarding/source_route.hpp"

#include <algorithm>
#include <stdexcept>

namespace hydra::fwd {

SourceRouteProgram::Decision SourceRouteProgram::process(p4rt::Packet& pkt,
                                                         int /*in_port*/,
                                                         int /*switch_id*/) {
  Decision d;
  if (!pkt.has_sr || pkt.sr_stack.empty()) {
    underflow_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    d.reason = "sr_underflow";
    return d;
  }
  d.eg_port = pkt.sr_stack.back();
  pkt.sr_stack.pop_back();
  if (pkt.sr_stack.empty()) pkt.has_sr = false;  // last hop strips the stack
  return d;
}

void set_source_route(p4rt::Packet& pkt, const std::vector<int>& ports) {
  pkt.sr_stack.clear();
  for (auto it = ports.rbegin(); it != ports.rend(); ++it) {
    pkt.sr_stack.push_back(static_cast<std::uint16_t>(*it));
  }
  pkt.has_sr = true;
}

std::vector<int> leaf_spine_route(const net::LeafSpine& fabric, int src_host,
                                  int dst_host, int via_spine_index) {
  auto locate = [&fabric](int host) -> std::pair<int, int> {
    for (std::size_t l = 0; l < fabric.hosts.size(); ++l) {
      const auto& hs = fabric.hosts[l];
      const auto it = std::find(hs.begin(), hs.end(), host);
      if (it != hs.end()) {
        return {static_cast<int>(l), static_cast<int>(it - hs.begin())};
      }
    }
    throw std::invalid_argument("host not in fabric");
  };
  const auto [src_leaf, src_idx] = locate(src_host);
  const auto [dst_leaf, dst_idx] = locate(dst_host);
  std::vector<int> ports;
  if (src_leaf == dst_leaf) {
    ports.push_back(fabric.leaf_host_port(dst_idx));
    return ports;
  }
  ports.push_back(fabric.leaf_uplink_port(via_spine_index));  // at src leaf
  ports.push_back(fabric.spine_down_port(dst_leaf));          // at spine
  ports.push_back(fabric.leaf_host_port(dst_idx));            // at dst leaf
  return ports;
}

}  // namespace hydra::fwd
