file(REMOVE_RECURSE
  "CMakeFiles/hydra_checkers.dir/checkers/library.cpp.o"
  "CMakeFiles/hydra_checkers.dir/checkers/library.cpp.o.d"
  "libhydra_checkers.a"
  "libhydra_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
