file(REMOVE_RECURSE
  "libhydra_indus.a"
)
