// The Indus type system (paper Figure 4):
//   t ::= bit<n> | bool | t[n] | set<t> | dict<k, v> | (t1, ..., tk)
// Tuples are a prototype extension used for dictionary keys and report
// payloads (e.g. dict<(bit<32>, bit<32>), bool> in the stateful firewall).
//
// Types are immutable values with structural equality. Array sizes are part
// of the type, which is what guarantees for-loop termination (§3.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace hydra::indus {

enum class TypeKind {
  kBit,
  kBool,
  kArray,
  kSet,
  kDict,
  kTuple,
};

class Type;
using TypePtr = std::shared_ptr<const Type>;

class Type {
 public:
  static TypePtr bits(int width);
  static TypePtr boolean();
  static TypePtr array(TypePtr elem, int size);
  static TypePtr set(TypePtr elem);
  static TypePtr dict(TypePtr key, TypePtr value);
  static TypePtr tuple(std::vector<TypePtr> elems);

  TypeKind kind() const { return kind_; }
  bool is_bits() const { return kind_ == TypeKind::kBit; }
  bool is_bool() const { return kind_ == TypeKind::kBool; }
  bool is_array() const { return kind_ == TypeKind::kArray; }
  bool is_set() const { return kind_ == TypeKind::kSet; }
  bool is_dict() const { return kind_ == TypeKind::kDict; }
  bool is_tuple() const { return kind_ == TypeKind::kTuple; }
  // A scalar fits in a single PHV container: bit<n> or bool.
  bool is_scalar() const { return is_bits() || is_bool(); }

  int bit_width() const { return width_; }   // kBit only
  int array_size() const { return width_; }  // kArray only
  const TypePtr& element() const { return elems_[0]; }  // array/set
  const TypePtr& key() const { return elems_[0]; }      // dict
  const TypePtr& value() const { return elems_[1]; }    // dict
  const std::vector<TypePtr>& members() const { return elems_; }  // tuple

  // Total bits needed to carry one value of this type in the telemetry
  // header (bool = 1 bit; arrays = size * elem bits + a count field).
  int flat_bits() const;

  // Scalar widths of the flattened representation, in declaration order.
  // A tuple (bit<32>, bool) flattens to {32, 1}; scalars to a single entry.
  std::vector<int> flatten_widths() const;

  bool equals(const Type& other) const;
  std::string to_string() const;

 private:
  Type(TypeKind kind, int width, std::vector<TypePtr> elems)
      : kind_(kind), width_(width), elems_(std::move(elems)) {}

  TypeKind kind_;
  int width_;  // bit width for kBit, array size for kArray
  std::vector<TypePtr> elems_;
};

inline bool operator==(const TypePtr& a, const TypePtr& b) {
  if (!a || !b) return static_cast<bool>(a) == static_cast<bool>(b);
  return a->equals(*b);
}

}  // namespace hydra::indus
