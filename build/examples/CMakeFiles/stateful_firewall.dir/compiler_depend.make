# Empty compiler generated dependencies file for stateful_firewall.
# This may be replaced when dependencies are built.
