#include "checkers/library.hpp"

#include <stdexcept>

namespace hydra::checkers {

namespace {

// ---------------------------------------------------------------------------
// Figure 1: bare-metal multi-tenancy.
// ---------------------------------------------------------------------------
const char* kMultiTenancy = R"(
/* Variable declarations */
control dict<bit<8>,bit<8>> tenants;
tele bit<8> tenant;
header bit<8> in_port;
header bit<8> eg_port;

{ /* Executes at first hop */
  tenant = tenants[in_port];
}
{ /* Executes at every hop */ }
{ /* Executes at the last hop */
  if (tenant != tenants[eg_port]) { reject; }
}
)";

// ---------------------------------------------------------------------------
// Data center uplink load balancing, hardware-optimized variant. The paper
// (§6.1) notes that for compilation to hardware they "maintain a boolean
// variable that records whether an imbalance has been detected on any
// switch on the network-wide path, which eliminates the need to iterate
// over multiple arrays" — this is that program. Figure 2's array version
// is kept verbatim below as dc_uplink_load_balance_fig2.
// ---------------------------------------------------------------------------
const char* kLoadBalance = R"(
sensor bit<32> left_load = 0;
sensor bit<32> right_load = 0;
control left_port;
control right_port;
control thresh;
control dict<bit<8>,bool> is_uplink;
tele bool imbalanced = false;
header bit<8> eg_port;

{ }
{
  if (is_uplink[eg_port]) {
    if (eg_port == left_port) {
      left_load += packet_length;
    }
    elsif (eg_port == right_port) {
      right_load += packet_length;
    }
    if (abs(left_load - right_load) > thresh) {
      imbalanced = true;
    }
  }
}
{
  if (imbalanced) {
    report;
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 2: data center load balancing, verbatim (telemetry arrays).
// ---------------------------------------------------------------------------
const char* kLoadBalanceFig2 = R"(
sensor bit<32> left_load = 0;
sensor bit<32> right_load = 0;
control left_port;
control right_port;
control thresh;
control dict<bit<8>,bool> is_uplink;
tele bit<32>[15] left_loads;
tele bit<32>[15] right_loads;
header bit<8> eg_port;

{ }
{
  if (is_uplink[eg_port]) {
    if (eg_port == left_port) {
      left_load += packet_length;
    }
    elsif (eg_port == right_port) {
      right_load += packet_length;
    }
  }
  left_loads.push(left_load);
  right_loads.push(right_load);
}
{
  for (left_load, right_load in left_loads,
       right_loads) {
    if (abs(left_load - right_load) > thresh) {
      report;
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 3: stateful firewall.
// ---------------------------------------------------------------------------
const char* kStatefulFirewall = R"(
control dict<(bit<32>,bit<32>),bool> allowed;
tele bool violated = false;
header bit<32> ipv4_src;
header bit<32> ipv4_dst;

{ /* Checks if packet is allowed to enter */
  if (!allowed[(ipv4_src,ipv4_dst)]) {
    violated = true;
  }
}
{ /* Checks if packet on reverse
     direction has been seen */
  if (last_hop && !allowed[(ipv4_dst, ipv4_src)]) {
    report((ipv4_dst,ipv4_src));
  }
}
{
  if (violated) { reject; }
}
)";

// ---------------------------------------------------------------------------
// Figure 9: Aether application filtering.
// ---------------------------------------------------------------------------
const char* kApplicationFiltering = R"(
tele bit<32> ue_ipv4_addr;
tele bit<32> app_ipv4_addr;
tele bit<8> app_ip_proto;
tele bit<16> app_l4_port;
tele bit<8> filtering_action = 0; // 1=deny,2=allow

control dict<(bit<32>,bit<8>,bit<32>,bit<16>),bit<8>> filtering_actions;

header bool inner_ipv4_is_valid;
header bool inner_tcp_is_valid;
header bool inner_udp_is_valid;
header bool ipv4_is_valid;
header bool tcp_is_valid;
header bool udp_is_valid;
header bool to_be_dropped;
header bit<32> inner_ipv4_src;
header bit<32> inner_ipv4_dst;
header bit<8> inner_ipv4_proto;
header bit<16> inner_tcp_dport;
header bit<16> inner_udp_dport;
header bit<32> outer_ipv4_src;
header bit<32> outer_ipv4_dst;
header bit<8> outer_ipv4_proto;
header bit<16> outer_tcp_sport;
header bit<16> outer_udp_sport;

{
  if (inner_ipv4_is_valid) {
    // this is an uplink packet
    ue_ipv4_addr = inner_ipv4_src;
    app_ip_proto = inner_ipv4_proto;
    app_ipv4_addr = inner_ipv4_dst;
    if (inner_tcp_is_valid) {
      app_l4_port = inner_tcp_dport;
    } elsif (inner_udp_is_valid) {
      app_l4_port = inner_udp_dport;
    }
  } elsif (ipv4_is_valid) {
    // this is a downlink packet
    ue_ipv4_addr = outer_ipv4_dst;
    app_ip_proto = outer_ipv4_proto;
    app_ipv4_addr = outer_ipv4_src;
    if (tcp_is_valid) {
      app_l4_port = outer_tcp_sport;
    } elsif (udp_is_valid) {
      app_l4_port = outer_udp_sport;
    }
  }
  filtering_action = filtering_actions[(
      ue_ipv4_addr, app_ip_proto, app_ipv4_addr,
      app_l4_port)];
}
{ }
{
  if (filtering_action == 1 && !to_be_dropped) {
    reject;
    report((ue_ipv4_addr, app_ip_proto,
            app_ipv4_addr, app_l4_port,
            filtering_action));
  }
  if (filtering_action == 2 && to_be_dropped) {
    report((ue_ipv4_addr, app_ip_proto,
            app_ipv4_addr, app_l4_port,
            filtering_action));
  }
}
)";

// ---------------------------------------------------------------------------
// VLAN isolation: packets should traverse switches in the same VLAN.
// ---------------------------------------------------------------------------
const char* kVlanIsolation = R"(
tele bit<16> vlan;
tele bool violated = false;
header bool vlan_is_valid;
header bit<16> vlan_id;

{
  if (vlan_is_valid) {
    vlan = vlan_id;
  }
}
{
  if (vlan_is_valid && vlan != vlan_id) {
    violated = true;
  }
}
{
  if (violated) {
    reject;
    report((vlan, vlan_id));
  }
}
)";

// ---------------------------------------------------------------------------
// Egress port validity: packets only egress a switch at allowed ports.
// ---------------------------------------------------------------------------
const char* kEgressPortValidity = R"(
control set<bit<8>> allowed_eg_ports;
tele bool violated = false;
header bit<8> eg_port;

{ }
{
  if (!(eg_port in allowed_eg_ports)) {
    violated = true;
  }
}
{
  if (violated) {
    reject;
    report((eg_port));
  }
}
)";

// ---------------------------------------------------------------------------
// Routing validity: first and last hop must be leaf switches, the rest
// spine switches.
// ---------------------------------------------------------------------------
const char* kRoutingValidity = R"(
control bool is_leaf_switch;
tele bool violated = false;

{ }
{
  if (first_hop || last_hop) {
    if (!is_leaf_switch) {
      violated = true;
    }
  }
  elsif (is_leaf_switch) {
    violated = true;
  }
}
{
  if (violated) {
    reject;
  }
}
)";

// ---------------------------------------------------------------------------
// Loops (4 hops): packets should not visit the same switch twice.
// ---------------------------------------------------------------------------
const char* kLoops = R"(
header bit<32> switch_id;
tele bit<32>[4] visited;
tele bool looped = false;

{ }
{
  if (switch_id in visited) {
    looped = true;
  }
  visited.push(switch_id);
}
{
  if (looped) {
    reject;
    report((switch_id));
  }
}
)";

// ---------------------------------------------------------------------------
// Waypointing: all packets pass through a choke point.
// ---------------------------------------------------------------------------
const char* kWaypointing = R"(
control bit<32> waypoint_id;
header bit<32> switch_id;
tele bool seen = false;

{
  if (switch_id == waypoint_id) {
    seen = true;
  }
}
{
  if (switch_id == waypoint_id) {
    seen = true;
  }
}
{
  if (!seen) {
    reject;
  }
}
)";

// ---------------------------------------------------------------------------
// Service chains: packets from s to t pass through (w1, ..., wn) in order.
// ---------------------------------------------------------------------------
const char* kServiceChains = R"(
control bit<32>[4] chain;
control bit<32> chain_len;
header bit<32> switch_id;
tele bit<8> progress = 0;

{ }
{
  if (progress < chain_len) {
    if (switch_id == chain[progress]) {
      progress += 1;
    }
  }
}
{
  if (progress != chain_len) {
    reject;
    report((progress));
  }
}
)";

// ---------------------------------------------------------------------------
// Source routing with path validation: a packet source-routed through
// (s, s1, ..., t) must pass those switches in order. At the first hop the
// checker snapshots the sender's declared hop list (before any switch has
// popped it); every hop then records its actual egress port; the last hop
// compares the two — catching any switch that forwards somewhere other
// than where the sender asked (independent of the forwarding code). This
// is the checker with the largest per-hop telemetry footprint, matching
// the paper's observation.
// ---------------------------------------------------------------------------
const char* kSourceRoutingPathValidation = R"(
control bool is_leaf_switch;
header bool sr_is_valid;
header bit<8> sr_depth;
header bit<8> sr_port_0;
header bit<8> sr_port_1;
header bit<8> sr_port_2;
header bit<8> sr_port_3;
header bit<8> sr_port_4;
header bit<8> sr_port_5;
header bit<8> eg_port;
tele bit<8>[6] expected;
tele bit<8>[6] actual;
tele bool sr_active = false;
tele bool valid = true;

{
  if (sr_is_valid) {
    sr_active = true;
    if (!is_leaf_switch) {
      valid = false;
    }
    if (sr_depth > 0) { expected.push(sr_port_0); }
    if (sr_depth > 1) { expected.push(sr_port_1); }
    if (sr_depth > 2) { expected.push(sr_port_2); }
    if (sr_depth > 3) { expected.push(sr_port_3); }
    if (sr_depth > 4) { expected.push(sr_port_4); }
    if (sr_depth > 5) { expected.push(sr_port_5); }
  }
}
{
  if (sr_active) {
    actual.push(eg_port);
  }
}
{
  if (sr_active) {
    if (!is_leaf_switch) {
      valid = false;
    }
    if (length(actual) != length(expected)) {
      valid = false;
    }
    for (e, a in expected, actual) {
      if (e != a) {
        valid = false;
      }
    }
    if (!valid) {
      reject;
      report((length(expected), length(actual)));
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 7: valley-free routing (the §5.1 case study).
// ---------------------------------------------------------------------------
const char* kValleyFree = R"(
control bool is_spine_switch;
tele bool visited_spine;
tele bool to_reject;

{
  visited_spine = false;
  to_reject = false;
}
{
  if (is_spine_switch) {
    if (visited_spine) {
      to_reject = true;
    }
    visited_spine = true;
  }
}
{
  if (to_reject) {
    reject;
  }
}
)";

// ---------------------------------------------------------------------------
// Generalized up/down (valley-free) routing for multi-tier fabrics: once a
// packet has taken a link towards a lower tier it must never go up again.
// Works for any tier assignment (fat trees, leaf-spine, ...), unlike the
// topology-specialized Figure 7 program.
// ---------------------------------------------------------------------------
const char* kUpDownRouting = R"(
control bit<8> my_tier;
tele bit<8> prev_tier = 255;
tele bool went_down = false;
tele bool valley = false;

{ }
{
  if (prev_tier != 255) {
    if (my_tier < prev_tier) {
      went_down = true;
    }
    if (my_tier > prev_tier) {
      if (went_down) {
        valley = true;
      }
    }
  }
  prev_tier = my_tier;
}
{
  if (valley) {
    reject;
    report((prev_tier));
  }
}
)";

// ---------------------------------------------------------------------------
// Hop-count limit: a cheap loop/detour guard — every path must finish
// within a configured number of hops.
// ---------------------------------------------------------------------------
const char* kHopCountLimit = R"(
control bit<8> max_hops;
tele bit<8> hops = 0;

{ }
{
  hops += 1;
}
{
  if (hops > max_hops) {
    reject;
    report((hops));
  }
}
)";

// ---------------------------------------------------------------------------
// DSCP preservation: QoS markings must survive the fabric untouched
// (catches mis-rewriting QoS policies and bit flips in the ToS byte).
// ---------------------------------------------------------------------------
const char* kDscpUnchanged = R"(
tele bit<8> dscp0;
tele bool changed = false;
header bool ipv4_is_valid;
header bit<8> ipv4_dscp;

{
  if (ipv4_is_valid) {
    dscp0 = ipv4_dscp;
  }
}
{
  if (ipv4_is_valid && ipv4_dscp != dscp0) {
    changed = true;
  }
}
{
  if (changed) {
    reject;
    report((dscp0, ipv4_dscp));
  }
}
)";

// ---------------------------------------------------------------------------
// Header integrity: IPv4 addresses must be identical at every hop (detects
// unauthorized NAT, header corruption, memory errors — the hardware-fault
// class the paper argues static checkers cannot see).
// ---------------------------------------------------------------------------
const char* kHeaderIntegrity = R"(
tele bit<32> src0;
tele bit<32> dst0;
tele bool corrupted = false;
header bool ipv4_is_valid;
header bit<32> ipv4_src;
header bit<32> ipv4_dst;

{
  if (ipv4_is_valid) {
    src0 = ipv4_src;
    dst0 = ipv4_dst;
  }
}
{
  if (ipv4_is_valid) {
    if (ipv4_src != src0 || ipv4_dst != dst0) {
      corrupted = true;
    }
  }
}
{
  if (corrupted) {
    reject;
    report((src0, dst0, ipv4_src, ipv4_dst));
  }
}
)";

std::vector<CheckerSpec> build_table1() {
  return {
      {"multi_tenancy",
       "All traffic through a given ToR switch port, facing a bare-metal "
       "server should belong to the same tenant",
       kMultiTenancy},
      {"dc_uplink_load_balance",
       "Uplink ports in data center switches should load balance, to exact "
       "equivalence, between specified ports",
       kLoadBalance},
      {"stateful_firewall",
       "Flows can only enter the network if a device inside initiated the "
       "communication",
       kStatefulFirewall},
      {"application_filtering",
       "Clients should only be able to communicate with designated "
       "applications (as identified by layer 4 ports)",
       kApplicationFiltering},
      {"vlan_isolation",
       "Packets should traverse switches in the same VLAN", kVlanIsolation},
      {"egress_port_validity",
       "Packets should only egress a switch at allowed ports",
       kEgressPortValidity},
      {"routing_validity",
       "The first and last hop of any packet should be a leaf switch, while "
       "the rest of the hops are spine switches",
       kRoutingValidity},
      {"loops",
       "Packets should not visit the same switch twice", kLoops},
      {"waypointing",
       "All packets should pass through a choke point", kWaypointing},
      {"service_chains",
       "Packets from switch s to switch t should pass through switches "
       "(w1, w2, ..., wn) in that order on the way",
       kServiceChains},
      {"source_routing_path_validation",
       "A packet that is source routed through switches (s, s1, ..., t) "
       "should pass them in order",
       kSourceRoutingPathValidation},
  };
}

}  // namespace

const std::vector<CheckerSpec>& table1_checkers() {
  static const std::vector<CheckerSpec> kList = build_table1();
  return kList;
}

const std::vector<CheckerSpec>& all_checkers() {
  static const std::vector<CheckerSpec> kList = [] {
    std::vector<CheckerSpec> list = build_table1();
    list.push_back({"valley_free",
                    "Packets may not traverse an up-link after a down-link "
                    "(at most one spine visit)",
                    kValleyFree});
    list.push_back({"dc_uplink_load_balance_fig2",
                    "Figure 2 verbatim: per-hop load arrays, checked with a "
                    "parallel for loop at the last hop",
                    kLoadBalanceFig2});
    list.push_back({"up_down_routing",
                    "Generalized valley-free routing for multi-tier fabrics: "
                    "no up-link after a down-link",
                    kUpDownRouting});
    list.push_back({"hop_count_limit",
                    "Every path must finish within a configured number of "
                    "hops",
                    kHopCountLimit});
    list.push_back({"dscp_unchanged",
                    "QoS markings must survive the fabric untouched",
                    kDscpUnchanged});
    list.push_back({"header_integrity",
                    "IPv4 addresses must be identical at every hop "
                    "(corruption / unauthorized NAT detector)",
                    kHeaderIntegrity});
    return list;
  }();
  return kList;
}

const CheckerSpec& checker_by_name(std::string_view name) {
  for (const auto& c : all_checkers()) {
    if (c.name == name) return c;
  }
  throw std::invalid_argument("no checker named '" + std::string(name) + "'");
}

}  // namespace hydra::checkers
