#include "obs/forensics.hpp"

#include <atomic>
#include <cstdio>

namespace hydra::obs {

namespace {

std::atomic<std::uint64_t> g_forensics_allocations{0};

void note_allocation(std::uint64_t n = 1) {
  g_forensics_allocations.fetch_add(n, std::memory_order_relaxed);
}

std::string format_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::uint64_t forensics_allocations() {
  return g_forensics_allocations.load(std::memory_order_relaxed);
}

namespace detail {
void note_forensics_allocation(std::uint64_t n) { note_allocation(n); }
}  // namespace detail

// ---- HopRecord ------------------------------------------------------------

void HopRecord::reset() { *this = HopRecord{}; }

void HopRecord::add_table_hit(std::int16_t table, std::int32_t entry,
                              bool hit) {
  if (n_table_hits >= kMaxTableHits) {
    truncated |= kTruncTableHits;
    return;
  }
  table_hits[n_table_hits++] = {table, entry, hit};
}

void HopRecord::add_reg_touch(std::int16_t reg, bool wrote,
                              std::uint64_t before, std::uint64_t after) {
  if (n_reg_touches >= kMaxRegTouches) {
    truncated |= kTruncRegTouches;
    return;
  }
  reg_touches[n_reg_touches++] = {reg, wrote, before, after};
}

void HopRecord::add_tele(std::int16_t field, std::uint64_t value) {
  if (n_tele >= kMaxTele) {
    truncated |= kTruncTele;
    return;
  }
  tele[n_tele++] = {field, value};
}

// ---- FlightRecorder -------------------------------------------------------

FlightRecorder::FlightRecorder(int switches, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  rings_.resize(static_cast<std::size_t>(switches));
  for (auto& r : rings_) r.slots.resize(capacity_);
  // One charge per ring: after this, append() never allocates.
  note_allocation(rings_.size() + 1);
}

std::uint64_t FlightRecorder::recorded() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r.total;
  return total;
}

HopRecord& FlightRecorder::append(int sw) {
  Ring& r = rings_[static_cast<std::size_t>(sw)];
  HopRecord& slot = r.slots[r.next];
  r.next = (r.next + 1) % capacity_;
  if (r.count < capacity_) ++r.count;
  ++r.total;
  slot.reset();
  return slot;
}

void FlightRecorder::collect(std::uint64_t packet_id,
                             std::vector<const HopRecord*>& out) const {
  for (const auto& r : rings_) {
    // Oldest -> newest: the oldest retained slot is `next` when the ring
    // has wrapped, 0 otherwise.
    const std::size_t start = r.count == capacity_ ? r.next : 0;
    for (std::size_t i = 0; i < r.count; ++i) {
      const HopRecord& rec = r.slots[(start + i) % capacity_];
      if (rec.packet_id == packet_id) out.push_back(&rec);
    }
  }
}

void FlightRecorder::clear() {
  for (auto& r : rings_) {
    r.next = 0;
    r.count = 0;
    r.total = 0;
  }
}

// ---- ViolationReport serialization ----------------------------------------

namespace {

void append_checker_json(std::string& out, const ViolationHopChecker& c) {
  out += "{\"checker\": \"" + json_escape(c.checker) + "\"";
  std::string blocks;
  if (c.ran_init) blocks += "init+";
  if (c.ran_tele) blocks += "tele+";
  if (c.ran_check) blocks += "check+";
  if (!blocks.empty()) blocks.pop_back();
  out += ", \"blocks\": \"" + blocks + "\"";
  out += ", \"reject\": ";
  out += c.reject ? "true" : "false";
  out += ", \"reports\": " + std::to_string(c.report_count);
  out += ", \"table_hits\": [";
  for (std::size_t i = 0; i < c.table_hits.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"table\": \"" + json_escape(c.table_hits[i].table) +
           "\", \"entry\": " + std::to_string(c.table_hits[i].entry) +
           ", \"hit\": ";
    out += c.table_hits[i].hit ? "true" : "false";
    out += "}";
  }
  out += "], \"registers\": [";
  for (std::size_t i = 0; i < c.reg_touches.size(); ++i) {
    if (i > 0) out += ", ";
    const auto& r = c.reg_touches[i];
    out += "{\"register\": \"" + json_escape(r.reg) + "\", \"op\": \"";
    out += r.wrote ? "write" : "read";
    out += "\", \"before\": " + std::to_string(r.before) +
           ", \"after\": " + std::to_string(r.after) + "}";
  }
  out += "], \"tele\": {";
  for (std::size_t i = 0; i < c.tele.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(c.tele[i].name) +
           "\": " + std::to_string(c.tele[i].value);
  }
  out += "}";
  if (!c.fault_note.empty()) {
    out += ", \"fault_note\": \"" + json_escape(c.fault_note) + "\"";
  }
  if (c.provenance_truncated) out += ", \"provenance_truncated\": true";
  out += "}";
}

void append_report_json(std::string& out, const ViolationReport& v) {
  out += "  {\"packet_id\": " + std::to_string(v.packet_id) +
         ", \"flow\": \"" + json_escape(v.flow) + "\", \"kind\": \"" +
         json_escape(v.kind) + "\"";
  if (!v.reason.empty()) {
    out += ", \"reason\": \"" + json_escape(v.reason) + "\"";
  }
  out += ",\n   \"checkers\": [";
  for (std::size_t i = 0; i < v.checkers.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(v.checkers[i]) + "\"";
  }
  out += "], \"switch\": \"" + json_escape(v.switch_name) +
         "\", \"switch_id\": " + std::to_string(v.switch_id) +
         ", \"time\": " + format_time(v.time) +
         ", \"hop_count\": " + std::to_string(v.hop_count) +
         ", \"truncated\": ";
  out += v.truncated ? "true" : "false";
  out += ",\n   \"report_payloads\": [";
  for (std::size_t i = 0; i < v.report_payloads.size(); ++i) {
    if (i > 0) out += ", ";
    out += "[";
    for (std::size_t j = 0; j < v.report_payloads[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(v.report_payloads[i][j]);
    }
    out += "]";
  }
  out += "],\n   \"hops\": [";
  bool first_hop = true;
  for (const auto& h : v.hops) {
    out += first_hop ? "\n" : ",\n";
    first_hop = false;
    out += "    {\"hop\": " + std::to_string(h.hop) +
           ", \"switch\": \"" + json_escape(h.switch_name) +
           "\", \"switch_id\": " + std::to_string(h.switch_id) +
           ", \"time\": " + format_time(h.time) +
           ", \"in_port\": " + std::to_string(h.in_port) +
           ", \"eg_port\": " + std::to_string(h.eg_port) +
           ", \"first_hop\": ";
    out += h.first_hop ? "true" : "false";
    out += ", \"last_hop\": ";
    out += h.last_hop ? "true" : "false";
    out += ", \"fwd_drop\": ";
    out += h.fwd_drop ? "true" : "false";
    if (!h.fwd_reason.empty()) {
      out += ", \"fwd_reason\": \"" + json_escape(h.fwd_reason) + "\"";
    }
    out += ",\n     \"checkers\": [";
    for (std::size_t i = 0; i < h.checkers.size(); ++i) {
      out += i == 0 ? "\n      " : ",\n      ";
      append_checker_json(out, h.checkers[i]);
    }
    out += h.checkers.empty() ? "]}" : "\n     ]}";
  }
  out += first_hop ? "]}" : "\n   ]}";
}

}  // namespace

std::string violation_json(const ViolationReport& report) {
  std::string out;
  append_report_json(out, report);
  return out;
}

std::string violations_json(const std::vector<ViolationReport>& reports) {
  std::string out = "[";
  bool first = true;
  for (const auto& v : reports) {
    out += first ? "\n" : ",\n";
    first = false;
    append_report_json(out, v);
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

std::string violation_narrative(const ViolationReport& v) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "VIOLATION (%s) packet %llu  %s\n  verdict at %s (hop %d, "
                "t=%.3fus) by:",
                v.kind.c_str(), static_cast<unsigned long long>(v.packet_id),
                v.flow.c_str(), v.switch_name.c_str(), v.hop_count,
                v.time * 1e6);
  std::string out = buf;
  for (const auto& c : v.checkers) out += " " + c;
  out += "\n";
  if (!v.reason.empty() && v.reason != "checker_reject" &&
      v.reason != "checker_report") {
    out += "  reason: " + v.reason + "\n";
  }
  if (v.truncated) {
    out += "  (flight recorder wrapped: earliest hops evicted)\n";
  }
  for (const auto& h : v.hops) {
    std::snprintf(buf, sizeof(buf), "  hop %d  t=%.3fus  %s  in:%d -> %s%s%s\n",
                  h.hop, h.time * 1e6, h.switch_name.c_str(), h.in_port,
                  h.fwd_drop ? "DROP"
                             : ("out:" + std::to_string(h.eg_port)).c_str(),
                  h.first_hop ? "  [first]" : "",
                  h.last_hop ? "  [last]" : "");
    out += buf;
    if (!h.fwd_reason.empty()) {
      out += "      forwarding drop reason: " + h.fwd_reason + "\n";
    }
    for (const auto& c : h.checkers) {
      std::string blocks;
      if (c.ran_init) blocks += "init+";
      if (c.ran_tele) blocks += "tele+";
      if (c.ran_check) blocks += "check+";
      if (!blocks.empty()) blocks.pop_back();
      out += "    " + c.checker + " [" + blocks + "]";
      if (c.reject) out += "  VERDICT: reject";
      if (c.report_count > 0) {
        out += "  reports: " + std::to_string(c.report_count);
      }
      if (!c.fault_note.empty()) out += "  fault: " + c.fault_note;
      out += "\n";
      for (const auto& th : c.table_hits) {
        out += "      table " + th.table +
               (th.hit ? (th.entry >= 0
                              ? ": hit entry " + std::to_string(th.entry)
                              : std::string(": hit (default)"))
                       : std::string(": MISS"));
        out += "\n";
      }
      for (const auto& rt : c.reg_touches) {
        out += "      reg " + rt.reg + (rt.wrote ? " write " : " read ") +
               std::to_string(rt.before);
        if (rt.wrote) out += " -> " + std::to_string(rt.after);
        out += "\n";
      }
      for (const auto& tv : c.tele) {
        out += "      " + tv.name + " = " + std::to_string(tv.value) + "\n";
      }
    }
  }
  return out;
}

}  // namespace hydra::obs
