file(REMOVE_RECURSE
  "CMakeFiles/ablation_list_capacity.dir/ablation_list_capacity.cpp.o"
  "CMakeFiles/ablation_list_capacity.dir/ablation_list_capacity.cpp.o.d"
  "ablation_list_capacity"
  "ablation_list_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_list_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
