file(REMOVE_RECURSE
  "CMakeFiles/extra_checkers_test.dir/extra_checkers_test.cpp.o"
  "CMakeFiles/extra_checkers_test.dir/extra_checkers_test.cpp.o.d"
  "extra_checkers_test"
  "extra_checkers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_checkers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
