# Empty dependencies file for aether_test.
# This may be replaced when dependencies are built.
