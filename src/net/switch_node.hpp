// Per-hop context, the header-variable resolver (the "foreign function
// interface" between Indus checkers and the data plane), and the
// forwarding-program interface implemented by src/forwarding.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "p4rt/packet.hpp"
#include "util/bitvec.hpp"

namespace hydra::net {

// Everything a checker's header variables may observe at one hop.
struct HopContext {
  int switch_id = -1;        // topology node id
  std::uint32_t switch_tag = 0;  // stable numeric id exposed to checkers
  int in_port = -1;
  int eg_port = -1;          // -1 until forwarding decides / on drop
  bool first_hop = false;    // packet entering the network here
  bool last_hop = false;     // packet exiting the network here
  bool fwd_drop = false;     // forwarding decided to drop (UPF deny, miss)
  int wire_bytes = 0;        // packet length on the wire at this hop
};

// Resolves a header variable annotation to its value. Annotations cover
// the paper's examples: switch ports (`in_port`, `eg_port`), IPv4/L4
// fields with `ipv4_*`/`outer_*`/`inner_*` prefixes and `*_is_valid`
// flags, GTP-U (`gtpu_teid`), VLAN (`vlan_id`), `to_be_dropped`,
// `switch_id`, and the std.* intrinsics (first/last hop, packet length).
// Unknown annotations throw std::invalid_argument so checker/forwarding
// mismatches surface loudly instead of reading zeros.
BitVec resolve_header(const p4rt::Packet& pkt, const HopContext& ctx,
                      const std::string& annotation, int width);

// A switch's forwarding pipeline. Implementations may rewrite the packet
// (encap/decap, source-route pop) — this is the code Hydra checkers must
// remain independent from.
//
// STATE-CONFINEMENT RULE (parallel engine): the network's parallel engine
// calls process() for *different switches* concurrently (one thread per
// shard; a given switch always runs on the same thread). An implementation
// must therefore keep its mutable state either (a) per switch — a
// per-switch table map is the usual shape — or (b) thread-safe:
// process-wide totals (drop counters, packet counts) must be std::atomic
// with relaxed ordering, which keeps the totals deterministic because
// every switch contributes a schedule-independent amount.
class ForwardingProgram {
 public:
  virtual ~ForwardingProgram() = default;

  struct Decision {
    bool drop = false;
    int eg_port = -1;
    // Why the pipeline dropped (static string literal, e.g. "session_miss",
    // "no_route"); nullptr when forwarded or the program gives no reason.
    // Consumed by the forensics flight recorder — a literal keeps the hot
    // path allocation-free.
    const char* reason = nullptr;
  };

  virtual Decision process(p4rt::Packet& pkt, int in_port,
                           int switch_id) = 0;
  virtual std::string name() const = 0;

  // Observability hook: register this program's match-action tables (and
  // any other hot-path counters) with `registry`; a nullptr detaches every
  // handle. Called by the network when observability toggles, and again
  // for programs installed afterwards — implementations must be
  // idempotent. Default: the program exposes no metrics.
  virtual void attach_metrics(obs::Registry* registry) { (void)registry; }

  // Maps a switch id to the metrics registry whose counters that switch's
  // hot path may bump (shard-local under the parallel engine; the main
  // registry otherwise). resolve(-1) yields the main registry, for
  // counters not attributable to one switch. Null detaches.
  using MetricsResolver = std::function<obs::Registry*(int switch_id)>;

  // Shard-aware variant of attach_metrics, called by the network instead
  // of attach_metrics. A program whose hot path bumps obs counters from
  // per-switch state must override this and attach each switch's handles
  // to resolve(switch_id) — under the parallel engine a shared handle
  // would race. The default keeps single-registry programs working
  // unchanged by forwarding to attach_metrics(resolve(-1)).
  virtual void attach_metrics_sharded(MetricsResolver resolve) {
    attach_metrics(resolve ? resolve(-1) : nullptr);
  }

  // Flow-affinity opt-in. The parallel engine's flow-sharded windows run
  // process() for the SAME switch on different threads concurrently (hops
  // of different flows). A program may return true ONLY if process() is
  // safe under that regime: per-switch lookup structures treated as
  // read-only (route via p4rt::Table::lookup_shared, not lookup()),
  // mutations confined to the packet itself or to relaxed atomics.
  // Default false — the engine then falls back to switch-affinity
  // sharding, which preserves the one-switch-one-thread rule above.
  virtual bool concurrent_safe() const { return false; }

  // Toggled by the network when entering/leaving flow-affinity mode, so a
  // concurrent_safe() program can switch its table probes between the
  // cached single-threaded path and the shared path. No-op by default.
  virtual void set_concurrent(bool on) { (void)on; }

  // Drops any last-hit lookup caches the program keeps. Called by
  // full_snapshot() so the snapshot point is a cache-cold boundary in the
  // snapshotting process too — a restored process necessarily starts with
  // cold caches, and flushing both sides keeps cache-hit counters on
  // identical trajectories (restart equivalence). Caches are transparent
  // perf state, so flushing never changes forwarding decisions.
  virtual void invalidate_caches() {}

  // Full-state snapshot hooks (net::Network::full_snapshot). A program
  // with runtime-MUTABLE forwarding state — PFCP session churn is the
  // canonical case — overrides these so a restarted hydrad resumes with
  // identical forwarding decisions. Programs whose tables are static
  // scenario state (routing installed at startup) keep the no-op
  // defaults; the scenario rebuilds them on restart. save_state appends
  // whitespace-separated tokens; load_state must consume exactly what
  // save_state wrote (p4rt/table_io.hpp is the intended codec).
  virtual bool has_state() const { return false; }
  virtual void save_state(std::ostream& out) const { (void)out; }
  virtual void load_state(std::istream& in) { (void)in; }
};

}  // namespace hydra::net
