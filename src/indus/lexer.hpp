// Hand-written lexer for Indus. Supports decimal, hex (0x...) and binary
// (0b...) numeric literals, C-style /* */ and // comments, and @"..."
// annotation strings for header variables.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "indus/diagnostics.hpp"
#include "indus/token.hpp"

namespace hydra::indus {

class Lexer {
 public:
  Lexer(std::string_view source, Diagnostics& diags);

  // Lexes the whole input; the last token is always kEof.
  std::vector<Token> lex_all();

 private:
  Token next_token();
  char peek(int ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_trivia();
  Token make(Tok kind, Loc loc) const;
  Token lex_number(Loc loc);
  Token lex_ident(Loc loc);
  Token lex_string(Loc loc);

  std::string_view src_;
  Diagnostics& diags_;
  std::size_t pos_ = 0;
  Loc loc_;
};

}  // namespace hydra::indus
