#include "obs/trace.hpp"

#include <cstdio>

namespace hydra::obs {

namespace {

std::string format_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const char* fate_name(PacketFate fate) {
  switch (fate) {
    case PacketFate::kInFlight: return "in_flight";
    case PacketFate::kDelivered: return "delivered";
    case PacketFate::kFwdDropped: return "fwd_dropped";
    case PacketFate::kRejected: return "rejected";
    case PacketFate::kQueueDropped: return "queue_dropped";
    case PacketFate::kFaultDropped: return "fault_dropped";
  }
  return "unknown";
}

PacketTrace& TraceSink::begin(std::uint64_t packet_id, double created_at,
                              std::string flow) {
  PacketTrace t;
  t.packet_id = packet_id;
  t.created_at = created_at;
  t.flow = std::move(flow);
  traces_.push_back(std::move(t));
  active_[packet_id] = traces_.size() - 1;
  return traces_.back();
}

PacketTrace* TraceSink::active(std::uint64_t packet_id) {
  const auto it = active_.find(packet_id);
  return it == active_.end() ? nullptr : &traces_[it->second];
}

void TraceSink::finish(std::uint64_t packet_id, PacketFate fate,
                       double time) {
  PacketTrace* t = active(packet_id);
  if (t == nullptr) return;
  t->fate = fate;
  t->finished_at = time;
  active_.erase(packet_id);
}

void TraceSink::clear() {
  traces_.clear();
  active_.clear();
}

std::string TraceSink::to_json() const {
  std::string out = "[";
  bool first_trace = true;
  for (const auto& t : traces_) {
    out += first_trace ? "\n" : ",\n";
    first_trace = false;
    out += "  {\"packet_id\": " + std::to_string(t.packet_id) +
           ", \"flow\": \"" + json_escape(t.flow) +
           "\", \"created_at\": " + format_time(t.created_at) +
           ", \"fate\": \"" + fate_name(t.fate) +
           "\", \"finished_at\": " + format_time(t.finished_at) +
           ", \"hops\": [";
    bool first_hop = true;
    for (const auto& h : t.hops) {
      out += first_hop ? "\n" : ",\n";
      first_hop = false;
      out += "    {\"hop\": " + std::to_string(h.hop) +
             ", \"switch_id\": " + std::to_string(h.switch_id) +
             ", \"switch\": \"" + json_escape(h.switch_name) +
             "\", \"time\": " + format_time(h.time) +
             ", \"in_port\": " + std::to_string(h.in_port) +
             ", \"eg_port\": " + std::to_string(h.eg_port) +
             ", \"first_hop\": " + (h.first_hop ? "true" : "false") +
             ", \"last_hop\": " + (h.last_hop ? "true" : "false") +
             ", \"fwd_drop\": " + (h.fwd_drop ? "true" : "false") +
             ", \"rejected\": " + (h.rejected ? "true" : "false") +
             ", \"wire_bytes\": " + std::to_string(h.wire_bytes) +
             ", \"forwarding\": \"" + json_escape(h.forwarding) +
             "\", \"checkers\": [";
      bool first_chk = true;
      for (const auto& c : h.checkers) {
        out += first_chk ? "\n" : ",\n";
        first_chk = false;
        out += "      {\"checker\": \"" + json_escape(c.checker) +
               "\", \"ran_init\": " + (c.ran_init ? "true" : "false") +
               ", \"ran_tele\": " + (c.ran_tele ? "true" : "false") +
               ", \"ran_check\": " + (c.ran_check ? "true" : "false") +
               ", \"reject\": " + (c.reject ? "true" : "false") +
               ", \"reports\": [";
        for (std::size_t ri = 0; ri < c.reports.size(); ++ri) {
          if (ri > 0) out += ", ";
          out += "[";
          for (std::size_t vi = 0; vi < c.reports[ri].size(); ++vi) {
            if (vi > 0) out += ", ";
            out += std::to_string(c.reports[ri][vi]);
          }
          out += "]";
        }
        out += "], \"tele\": {";
        for (std::size_t fi = 0; fi < c.tele.size(); ++fi) {
          if (fi > 0) out += ", ";
          out += "\"" + json_escape(c.tele[fi].name) + "\": [" +
                 std::to_string(c.tele[fi].before) + ", " +
                 std::to_string(c.tele[fi].after) + "]";
        }
        out += "}}";
      }
      out += first_chk ? "]}" : "\n    ]}";
    }
    out += first_hop ? "]}" : "\n  ]}";
  }
  out += first_trace ? "]\n" : "\n]\n";
  return out;
}

std::string TraceSink::narrative(const PacketTrace& t) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "packet %llu  %s\n  fate: %s after %zu hop%s\n",
                static_cast<unsigned long long>(t.packet_id), t.flow.c_str(),
                fate_name(t.fate), t.hops.size(),
                t.hops.size() == 1 ? "" : "s");
  std::string out = buf;
  for (const auto& h : t.hops) {
    std::snprintf(buf, sizeof(buf),
                  "  hop %d  t=%.3fus  %s  in:%d -> %s%s%s  fwd=%s\n", h.hop,
                  h.time * 1e6, h.switch_name.c_str(), h.in_port,
                  h.fwd_drop ? "DROP"
                             : ("out:" + std::to_string(h.eg_port)).c_str(),
                  h.first_hop ? "  [first]" : "",
                  h.last_hop ? "  [last]" : "", h.forwarding.c_str());
    out += buf;
    for (const auto& c : h.checkers) {
      std::string blocks;
      if (c.ran_init) blocks += "init+";
      if (c.ran_tele) blocks += "tele+";
      if (c.ran_check) blocks += "check+";
      if (!blocks.empty()) blocks.pop_back();
      out += "    " + c.checker + " [" + blocks + "]";
      if (c.reject) out += "  VERDICT: reject";
      for (const auto& r : c.reports) {
        out += "  report(";
        for (std::size_t i = 0; i < r.size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(r[i]);
        }
        out += ")";
      }
      out += "\n";
      for (const auto& f : c.tele) {
        if (f.before == f.after) continue;  // only narrate what changed
        out += "      " + f.name + ": " + std::to_string(f.before) + " -> " +
               std::to_string(f.after) + "\n";
      }
    }
  }
  return out;
}

}  // namespace hydra::obs
