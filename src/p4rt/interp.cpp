#include "p4rt/interp.hpp"

#include <stdexcept>

namespace hydra::p4rt {

using indus::BinOp;
using indus::UnOp;

CheckerState make_checker_state(const ir::CheckerIR& ir) {
  CheckerState state;
  for (const auto& t : ir.tables) {
    std::vector<MatchFieldSpec> spec;
    for (int w : t.key_widths) {
      // Generated dict/set tables use ternary keys so the control plane can
      // install exact or wildcarded entries with priorities.
      spec.push_back({MatchKind::kTernary, w});
    }
    Table table(t.name, std::move(spec));
    if (t.config_scalar) {
      std::vector<BitVec> zeros;
      for (int w : t.value_widths) zeros.emplace_back(w, 0);
      table.set_default(std::move(zeros));
    }
    state.tables.push_back(std::move(table));
  }
  for (const auto& r : ir.registers) {
    state.registers.emplace_back(r.name, r.width, 1, r.initial);
  }
  return state;
}

std::vector<BitVec> Interp::fresh_store() const {
  std::vector<BitVec> vals;
  vals.reserve(ir_.fields.size());
  for (const auto& f : ir_.fields) {
    vals.emplace_back(f.width, 0);
  }
  return vals;
}

void Interp::reset_store(std::vector<BitVec>& vals) const {
  vals.resize(ir_.fields.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = BitVec(ir_.fields[i].width, 0);
  }
}

void Interp::load_frame(const TeleFrame& frame,
                        std::vector<BitVec>& vals) const {
  if (frame.values.size() != vals.size()) {
    throw std::invalid_argument("telemetry frame size mismatch for '" +
                                ir_.name + "'");
  }
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (ir_.fields[i].space == ir::Space::kTele) vals[i] = frame.values[i];
  }
}

void Interp::store_frame(const std::vector<BitVec>& vals,
                         TeleFrame& frame) const {
  frame.values = vals;
  // Only tele fields are meaningful on the wire; zero the rest so the frame
  // does not leak switch-local state between hops.
  for (std::size_t i = 0; i < frame.values.size(); ++i) {
    if (ir_.fields[i].space != ir::Space::kTele) {
      frame.values[i] = BitVec(ir_.fields[i].width, 0);
    }
  }
}

BitVec Interp::eval(const ir::RValue& rv, std::vector<BitVec>& vals,
                    const HeaderResolver& hdr) const {
  switch (rv.kind) {
    case ir::RKind::kConst:
      return rv.cval;
    case ir::RKind::kField: {
      const ir::Field& f = ir_.field(rv.field);
      if (f.space == ir::Space::kHeader) {
        return hdr(f.annotation, f.width).resize(f.width);
      }
      return vals[static_cast<std::size_t>(rv.field.id)];
    }
    case ir::RKind::kUnary: {
      const BitVec a = eval(*rv.args[0], vals, hdr);
      switch (rv.unop) {
        case UnOp::kNot: return BitVec::from_bool(!a.as_bool());
        case UnOp::kBitNot: return a.bnot();
        case UnOp::kNeg: return BitVec(a.width(), 0).sub(a);
      }
      return a;
    }
    case ir::RKind::kBinary: {
      // Short-circuit logical operators.
      if (rv.binop == BinOp::kAnd) {
        if (!eval(*rv.args[0], vals, hdr).as_bool()) {
          return BitVec::from_bool(false);
        }
        return BitVec::from_bool(eval(*rv.args[1], vals, hdr).as_bool());
      }
      if (rv.binop == BinOp::kOr) {
        if (eval(*rv.args[0], vals, hdr).as_bool()) {
          return BitVec::from_bool(true);
        }
        return BitVec::from_bool(eval(*rv.args[1], vals, hdr).as_bool());
      }
      const BitVec a = eval(*rv.args[0], vals, hdr);
      const BitVec b = eval(*rv.args[1], vals, hdr);
      switch (rv.binop) {
        case BinOp::kAdd: return a.add(b);
        case BinOp::kSub: return a.sub(b);
        case BinOp::kMul: return a.mul(b);
        case BinOp::kDiv: return a.div(b);
        case BinOp::kMod: return a.mod(b);
        case BinOp::kBitAnd: return a.band(b);
        case BinOp::kBitOr: return a.bor(b);
        case BinOp::kBitXor: return a.bxor(b);
        case BinOp::kShl: return a.shl(b);
        case BinOp::kShr: return a.shr(b);
        case BinOp::kEq: return BitVec::from_bool(a == b);
        case BinOp::kNe: return BitVec::from_bool(!(a == b));
        case BinOp::kLt: return BitVec::from_bool(a < b);
        case BinOp::kLe: return BitVec::from_bool(a <= b);
        case BinOp::kGt: return BitVec::from_bool(a > b);
        case BinOp::kGe: return BitVec::from_bool(a >= b);
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // handled above
      }
      return a;
    }
    case ir::RKind::kAbsDiff: {
      const BitVec a = eval(*rv.args[0], vals, hdr);
      const BitVec b = eval(*rv.args[1], vals, hdr);
      return a.abs_diff(b);
    }
  }
  throw std::logic_error("unreachable rvalue kind");
}

void Interp::exec(const ir::Instr& instr, std::vector<BitVec>& vals,
                  CheckerState& state, const HeaderResolver& hdr,
                  ExecOutcome& out) const {
  metrics_.instructions.inc();
  switch (instr.kind) {
    case ir::InstrKind::kAssign: {
      const ir::Field& f = ir_.field(instr.dst);
      vals[static_cast<std::size_t>(instr.dst.id)] =
          eval(*instr.value, vals, hdr).resize(f.width);
      return;
    }
    case ir::InstrKind::kTableLookup: {
      metrics_.table_lookups.inc();
      const ir::Table& spec = ir_.tables[static_cast<std::size_t>(instr.table)];
      Table& table = state.tables[static_cast<std::size_t>(instr.table)];
      const std::vector<BitVec>* action_data = nullptr;
      bool hit = false;
      std::int32_t entry_idx = -1;
      if (spec.config_scalar) {
        action_data = &table.default_data();
        hit = true;
      } else {
        key_scratch_.clear();
        for (std::size_t k = 0; k < instr.keys.size(); ++k) {
          key_scratch_.push_back(eval(*instr.keys[k], vals, hdr)
                                     .resize(spec.key_widths[k]));
        }
        const TableEntry* entry =
            shared_tables_ ? table.lookup_shared(key_scratch_, table_scratch_)
                           : table.lookup(key_scratch_);
        if (entry != nullptr) {
          action_data = &entry->action_data;
          hit = true;
          if (prov_ != nullptr) entry_idx = table.entry_index_of(entry);
        }
      }
      if (prov_ != nullptr) {
        prov_->table_hits.push_back({instr.table, entry_idx, hit});
      }
      for (std::size_t d = 0; d < instr.dsts.size(); ++d) {
        const ir::Field& f = ir_.field(instr.dsts[d]);
        const BitVec v = action_data != nullptr && d < action_data->size()
                             ? (*action_data)[d]
                             : BitVec(f.width, 0);
        vals[static_cast<std::size_t>(instr.dsts[d].id)] = v.resize(f.width);
      }
      if (instr.hit_dst.valid()) {
        vals[static_cast<std::size_t>(instr.hit_dst.id)] =
            BitVec::from_bool(hit);
      }
      return;
    }
    case ir::InstrKind::kRegRead: {
      metrics_.reg_reads.inc();
      const BitVec v =
          state.registers[static_cast<std::size_t>(instr.reg)].read(0);
      if (prov_ != nullptr) {
        prov_->reg_touches.push_back(
            {instr.reg, /*wrote=*/false, v.value(), v.value()});
      }
      vals[static_cast<std::size_t>(instr.dst.id)] = v;
      return;
    }
    case ir::InstrKind::kRegWrite: {
      metrics_.reg_writes.inc();
      RegisterArray& ra = state.registers[static_cast<std::size_t>(instr.reg)];
      const BitVec v = eval(*instr.value, vals, hdr);
      if (prov_ != nullptr) {
        prov_->reg_touches.push_back(
            {instr.reg, /*wrote=*/true, ra.read(0).value(), v.value()});
      }
      ra.write(0, v);
      return;
    }
    case ir::InstrKind::kPush: {
      const ir::TeleList& l = ir_.lists[static_cast<std::size_t>(instr.list)];
      const std::size_t cnt =
          vals[static_cast<std::size_t>(l.count.id)].value();
      if (cnt < l.slots.size()) {
        // Saturating push: a full stack drops further telemetry, matching
        // the generated P4's bounded header stack.
        vals[static_cast<std::size_t>(l.slots[cnt].id)] =
            eval(*instr.push_value, vals, hdr).resize(l.elem_width);
        vals[static_cast<std::size_t>(l.count.id)] =
            BitVec(ir_.field(l.count).width,
                   static_cast<std::uint64_t>(cnt + 1));
      }
      return;
    }
    case ir::InstrKind::kIf: {
      const bool cond = eval(*instr.cond, vals, hdr).as_bool();
      const auto& body = cond ? instr.then_body : instr.else_body;
      for (const auto& child : body) exec(*child, vals, state, hdr, out);
      return;
    }
    case ir::InstrKind::kReject:
      out.reject = true;
      return;
    case ir::InstrKind::kReport: {
      std::vector<BitVec> payload;
      payload.reserve(instr.report_payload.size());
      for (const auto& p : instr.report_payload) {
        payload.push_back(eval(*p, vals, hdr));
      }
      out.reports.push_back(std::move(payload));
      return;
    }
  }
}

void Interp::run(const std::vector<ir::InstrPtr>& block,
                 std::vector<BitVec>& vals, CheckerState& state,
                 const HeaderResolver& hdr, ExecOutcome& out) const {
  for (const auto& instr : block) exec(*instr, vals, state, hdr, out);
}

}  // namespace hydra::p4rt
