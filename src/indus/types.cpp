#include "indus/types.hpp"

#include <stdexcept>

namespace hydra::indus {

TypePtr Type::bits(int width) {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("bit width out of range: " +
                                std::to_string(width));
  }
  return TypePtr(new Type(TypeKind::kBit, width, {}));
}

TypePtr Type::boolean() {
  static const TypePtr kBool(new Type(TypeKind::kBool, 1, {}));
  return kBool;
}

TypePtr Type::array(TypePtr elem, int size) {
  if (size < 1) throw std::invalid_argument("array size must be positive");
  if (!elem) throw std::invalid_argument("array element type is null");
  return TypePtr(new Type(TypeKind::kArray, size, {std::move(elem)}));
}

TypePtr Type::set(TypePtr elem) {
  if (!elem) throw std::invalid_argument("set element type is null");
  return TypePtr(new Type(TypeKind::kSet, 0, {std::move(elem)}));
}

TypePtr Type::dict(TypePtr key, TypePtr value) {
  if (!key || !value) throw std::invalid_argument("dict type is null");
  return TypePtr(
      new Type(TypeKind::kDict, 0, {std::move(key), std::move(value)}));
}

TypePtr Type::tuple(std::vector<TypePtr> elems) {
  if (elems.size() < 2) {
    throw std::invalid_argument("tuple needs at least two members");
  }
  return TypePtr(new Type(TypeKind::kTuple, 0, std::move(elems)));
}

int Type::flat_bits() const {
  switch (kind_) {
    case TypeKind::kBit:
      return width_;
    case TypeKind::kBool:
      return 1;
    case TypeKind::kArray: {
      // Elements plus a fill-count field wide enough to hold `size`.
      int count_bits = 1;
      while ((1 << count_bits) <= width_) ++count_bits;
      return width_ * elems_[0]->flat_bits() + count_bits;
    }
    case TypeKind::kTuple: {
      int total = 0;
      for (const auto& m : elems_) total += m->flat_bits();
      return total;
    }
    case TypeKind::kSet:
    case TypeKind::kDict:
      // Sets and dicts live in tables/registers, never on the wire.
      return 0;
  }
  return 0;
}

std::vector<int> Type::flatten_widths() const {
  switch (kind_) {
    case TypeKind::kBit:
      return {width_};
    case TypeKind::kBool:
      return {1};
    case TypeKind::kTuple: {
      std::vector<int> out;
      for (const auto& m : elems_) {
        const auto part = m->flatten_widths();
        out.insert(out.end(), part.begin(), part.end());
      }
      return out;
    }
    case TypeKind::kArray: {
      std::vector<int> out;
      const auto part = elems_[0]->flatten_widths();
      for (int i = 0; i < width_; ++i) {
        out.insert(out.end(), part.begin(), part.end());
      }
      return out;
    }
    case TypeKind::kSet:
    case TypeKind::kDict:
      return {};
  }
  return {};
}

bool Type::equals(const Type& other) const {
  if (kind_ != other.kind_ || width_ != other.width_ ||
      elems_.size() != other.elems_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    if (!elems_[i]->equals(*other.elems_[i])) return false;
  }
  return true;
}

std::string Type::to_string() const {
  switch (kind_) {
    case TypeKind::kBit:
      return "bit<" + std::to_string(width_) + ">";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kArray:
      return elems_[0]->to_string() + "[" + std::to_string(width_) + "]";
    case TypeKind::kSet:
      return "set<" + elems_[0]->to_string() + ">";
    case TypeKind::kDict:
      return "dict<" + elems_[0]->to_string() + "," + elems_[1]->to_string() +
             ">";
    case TypeKind::kTuple: {
      std::string out = "(";
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (i) out += ",";
        out += elems_[i]->to_string();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace hydra::indus
