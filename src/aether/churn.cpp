#include "aether/churn.hpp"

#include <chrono>
#include <stdexcept>

#include "p4rt/packet.hpp"

namespace hydra::aether {

SessionChurnGenerator::SessionChurnGenerator(net::Network& net,
                                             AetherController& ctl,
                                             Config cfg)
    : net_(net), ctl_(ctl), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.sessions == 0) {
    throw std::invalid_argument("SessionChurnGenerator: sessions must be > 0");
  }
  if (cfg_.churn_per_s < 0.0 || cfg_.packets_per_s < 0.0 ||
      cfg_.churn_per_s + cfg_.packets_per_s <= 0.0) {
    throw std::invalid_argument(
        "SessionChurnGenerator: event rates must be non-negative and sum "
        "to a positive rate");
  }
  active_.reserve(cfg_.sessions);
  attach_latencies_.reserve(cfg_.sessions);
  // LIFO stack, filled descending so prefill attaches slots 0, 1, 2, ...
  free_slots_.reserve(cfg_.sessions);
  for (std::uint32_t slot = cfg_.sessions; slot > 0; --slot) {
    free_slots_.push_back(slot - 1);
  }
  // tick() mutates UPF/checker tables synchronously; see the header for
  // why this forces serial per-event windows in the parallel engine.
  net_.set_control_loop_active(true);
}

SessionChurnGenerator::~SessionChurnGenerator() {
  net_.set_control_loop_active(false);
}

void SessionChurnGenerator::attach_next_free() {
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  if (sample_latency_) {
    const auto t0 = std::chrono::steady_clock::now();
    ctl_.attach_client(cfg_.slice_id,
                       {imsi_of(slot), ue_ip_of(slot), teid_of(slot)},
                       cfg_.enb_ip, cfg_.n3_ip);
    const auto t1 = std::chrono::steady_clock::now();
    attach_latencies_.push_back(
        std::chrono::duration<double>(t1 - t0).count());
  } else {
    ctl_.attach_client(cfg_.slice_id,
                       {imsi_of(slot), ue_ip_of(slot), teid_of(slot)},
                       cfg_.enb_ip, cfg_.n3_ip);
  }
  active_.push_back(slot);
  ++attaches_;
}

void SessionChurnGenerator::detach_random() {
  const std::size_t i =
      static_cast<std::size_t>(rng_.below(active_.size()));
  const std::uint32_t slot = active_[i];
  ctl_.detach_client(imsi_of(slot));
  active_[i] = active_.back();
  active_.pop_back();
  free_slots_.push_back(slot);
  ++detaches_;
}

void SessionChurnGenerator::send_uplink() {
  if (active_.empty()) return;
  const std::uint32_t slot =
      active_[static_cast<std::size_t>(rng_.below(active_.size()))];
  const net::PacketHandle h = net_.alloc_packet();
  p4rt::make_gtpu_udp_into(net_.packet(h), cfg_.enb_ip, cfg_.n3_ip,
                           teid_of(slot), ue_ip_of(slot), cfg_.app_ip,
                           40000, cfg_.app_port, cfg_.payload_bytes);
  net_.send_pooled(cfg_.enb_host, h);
  ++packets_sent_;
}

void SessionChurnGenerator::prefill() {
  while (!free_slots_.empty()) attach_next_free();
}

void SessionChurnGenerator::start(double t0, double duration_s) {
  deadline_ = t0 + duration_s;
  net_.events().schedule_tick_at(t0, this);
}

void SessionChurnGenerator::tick(net::SimTime now) {
  if (now > deadline_) return;
  const double total = cfg_.churn_per_s + cfg_.packets_per_s;
  const bool churn = rng_.uniform() * total < cfg_.churn_per_s;
  if (churn) {
    // Balanced churn: a detach of a random active session or a re-attach
    // of a previously detached slot, whichever is possible; a coin flip
    // when both are.
    const bool can_detach = !active_.empty();
    const bool can_attach = !free_slots_.empty();
    if (can_attach && (!can_detach || rng_.chance(0.5))) {
      attach_next_free();
    } else if (can_detach) {
      detach_random();
    }
  } else {
    send_uplink();
  }
  net_.events().schedule_tick_in(rng_.exponential(1.0 / total), this);
}

}  // namespace hydra::aether
