file(REMOVE_RECURSE
  "CMakeFiles/checkers_e2e_test.dir/checkers_e2e_test.cpp.o"
  "CMakeFiles/checkers_e2e_test.dir/checkers_e2e_test.cpp.o.d"
  "checkers_e2e_test"
  "checkers_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkers_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
