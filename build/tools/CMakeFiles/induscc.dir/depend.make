# Empty dependencies file for induscc.
# This may be replaced when dependencies are built.
