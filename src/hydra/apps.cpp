#include "hydra/apps.hpp"

namespace hydra::apps {

FirewallAgent::FirewallAgent(net::Network& net, int deployment)
    : net_(net), deployment_(deployment) {
  net_.subscribe_reports([this](const net::ReportRecord& r) {
    if (r.deployment == deployment_) on_report(r);
  });
}

void FirewallAgent::on_report(const net::ReportRecord& r) {
  if (r.values.size() < 2) return;
  const auto key = std::pair{r.values[0].value(), r.values[1].value()};
  if (known_.count(key) != 0U) {
    ++duplicates_;
    return;
  }
  known_[key] = true;
  net_.dict_insert_all(deployment_, "allowed", {r.values[0], r.values[1]},
                       {BitVec::from_bool(true)});
  ++installed_;
}

ReportCounter::ReportCounter(net::Network& net) {
  net.subscribe_reports([this](const net::ReportRecord& r) {
    ++total_;
    ++by_switch_[r.switch_id];
    ++by_checker_[r.checker];
  });
}

std::uint64_t ReportCounter::at_switch(int switch_id) const {
  const auto it = by_switch_.find(switch_id);
  return it == by_switch_.end() ? 0 : it->second;
}

std::uint64_t ReportCounter::for_checker(const std::string& name) const {
  const auto it = by_checker_.find(name);
  return it == by_checker_.end() ? 0 : it->second;
}

}  // namespace hydra::apps
