// Link transmission model: store-and-forward with per-direction
// serialization, propagation latency, and a bounded drop-tail buffer.
// Tracks byte/packet counters for the throughput evaluation.
#pragma once

#include <cstdint>
#include <optional>

#include "net/topology.hpp"

namespace hydra::net {

class Link {
 public:
  explicit Link(const LinkSpec& spec);

  // Queues `bytes` for transmission in direction `dir` (0 = a->b, 1 = b->a)
  // at time `now`. Returns the arrival time at the peer, or nullopt if the
  // output buffer overflowed (tail drop).
  std::optional<double> transmit(int dir, double now, int bytes);

  const LinkSpec& spec() const { return spec_; }

  struct DirStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
    double busy_until = 0.0;
    double busy_time = 0.0;  // cumulative serialization time
  };
  const DirStats& stats(int dir) const { return dirs_[dir]; }

  // Full-state restore: reinstates one direction's cumulative counters and
  // serialization clock exactly as snapshotted, so the restarted process
  // reports identical per-link gauges and queues future transmissions
  // against the same busy horizon.
  void restore_stats(int dir, const DirStats& s) { dirs_[dir] = s; }

  // Mean offered load in Gb/s over [0, now].
  double throughput_gbps(int dir, double now) const;

  // Fraction of [0, now] this direction spent serializing (0..1); the
  // utilization figure the metrics snapshot exports per link.
  double utilization(int dir, double now) const {
    return now > 0.0 ? dirs_[dir].busy_time / now : 0.0;
  }

  // Buffer capacity per direction; initialized from LinkSpec::buffer_bytes
  // (default 1 MiB, typical of a shallow switch port buffer).
  double buffer_bytes() const { return buffer_bytes_; }
  void set_buffer_bytes(double bytes) { buffer_bytes_ = bytes; }

 private:
  LinkSpec spec_;
  DirStats dirs_[2];
  double buffer_bytes_;
};

}  // namespace hydra::net
