#include "net/host.hpp"

namespace hydra::net {

std::optional<p4rt::Packet> Host::deliver(const p4rt::Packet& pkt,
                                          double now) {
  ++received_;
  for (const auto& sink : sinks_) sink(pkt, now);
  if (auto_icmp_reply_ && pkt.icmp && pkt.icmp->type == 8 && pkt.ipv4 &&
      pkt.ipv4->dst == ip_) {
    p4rt::Packet reply = pkt;
    reply.tele.clear();
    reply.ipv4->src = ip_;
    reply.ipv4->dst = pkt.ipv4->src;
    reply.icmp->type = 0;  // echo reply, same ident/seq
    reply.eth.src = mac_;
    reply.eth.dst = pkt.eth.src;
    reply.created_at = now;
    return reply;
  }
  return std::nullopt;
}

}  // namespace hydra::net
