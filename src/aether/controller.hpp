// ONOS-like controller for the Aether UPF (§5.2).
//
// Faithfully reproduces the control-plane behaviour that creates the bug:
//
//   * PFCP delivers filtering rules PER CLIENT, so every attach re-sends
//     the slice's (current) rule list for that client.
//   * To save TCAM, the controller SHARES Applications entries between
//     clients of a slice: an attach only installs an Applications entry if
//     no identical (match+priority) entry exists, and allocates a fresh
//     app ID for new entries.
//   * An operator rule update via the portal only changes the stored
//     config — existing clients' table entries are NOT migrated.
//
// Consequence (Figure 11): update a rule (new priority/range), attach a new
// client, and the new higher-priority Applications entry captures the OLD
// clients' traffic with an app ID those clients have no Terminations entry
// for — silently dropping previously-allowed traffic.
//
// The controller also drives the Hydra checker's control-plane state (the
// `filtering_actions` dictionary), which always reflects the operator's
// *intended* policy — that independence is what lets the checker catch the
// bug.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aether/slice.hpp"
#include "forwarding/upf.hpp"
#include "net/network.hpp"

namespace hydra::aether {

class AetherController {
 public:
  // `upf` is the UPF leaf's program; `hydra_deployment` (if >= 0) is the
  // application-filtering checker deployed in `net`.
  AetherController(net::Network& net, std::shared_ptr<fwd::UpfProgram> upf,
                   int hydra_deployment = -1);

  void define_slice(Slice slice);
  const Slice& slice(std::uint32_t slice_id) const;

  // Operator updates the slice's rules in the portal. UPF entries of
  // already-attached clients are left as-is (the bug); the Hydra policy
  // table is refreshed for everyone (the ground truth).
  void update_slice_rules(std::uint32_t slice_id,
                          std::vector<FilteringRule> rules);

  // A client attaches (PFCP session establishment): installs sessions,
  // shared Applications entries for the current rules, per-client
  // Terminations, and the client's Hydra policy entries.
  void attach_client(std::uint32_t slice_id, const Client& client,
                     std::uint32_t enb_ip, std::uint32_t n3_ip);

  // PFCP session teardown: removes the client's sessions, terminations,
  // and Hydra policy entries, and releases its references on the slice's
  // shared Applications entries (an entry is uninstalled only when its
  // last referencing client detaches — the sharing optimization in
  // reverse). O(rules) per call; returns false for an unknown/detached
  // imsi. The client id -> imsi binding survives for re-attach.
  bool detach_client(std::uint64_t imsi);

  std::uint32_t client_id(std::uint64_t imsi) const;
  const std::vector<Client>& clients(std::uint32_t slice_id) const;
  std::size_t attached_count() const { return attached_index_.size(); }

  // Number of distinct app IDs allocated so far (app IDs start at 1).
  std::uint32_t app_ids_allocated() const { return next_app_id_ - 1; }

 private:
  struct SliceState {
    Slice config;
    std::vector<Client> attached;
    // Shared Applications entries already installed for this slice:
    // rule (match+priority) -> app id, plus the number of attached clients
    // referencing the entry (for teardown of the shared entry).
    struct InstalledApp {
      FilteringRule rule;
      std::uint32_t app_id = 0;
      std::uint32_t refs = 0;
    };
    std::vector<InstalledApp> installed_apps;
  };

  struct AttachedRecord {
    std::uint32_t slice_id = 0;
    std::uint32_t cid = 0;
    std::size_t pos = 0;  // index into SliceState::attached
    std::vector<std::uint32_t> app_ids;  // shared entries this attach refs
  };

  std::uint32_t ensure_application(SliceState& s, const FilteringRule& rule);
  void release_application(SliceState& s, std::uint32_t app_id);
  void install_hydra_policy(const SliceState& s, const Client& client);
  void remove_hydra_policy(const SliceState& s, const Client& client);
  // The per-client filtering_actions entries (shared by install/remove).
  std::vector<p4rt::TableEntry> build_policy_entries(
      const SliceState& s, const Client& client) const;

  net::Network& net_;
  std::shared_ptr<fwd::UpfProgram> upf_;
  int hydra_deployment_;
  std::map<std::uint32_t, SliceState> slices_;
  // imsi -> client id; hash maps, sized for million-subscriber churn.
  std::unordered_map<std::uint64_t, std::uint32_t> client_ids_;
  std::unordered_map<std::uint64_t, AttachedRecord> attached_index_;
  std::uint32_t next_client_id_ = 1;
  std::uint32_t next_app_id_ = 1;
};

}  // namespace hydra::aether
