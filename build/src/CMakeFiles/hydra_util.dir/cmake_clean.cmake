file(REMOVE_RECURSE
  "CMakeFiles/hydra_util.dir/util/bitvec.cpp.o"
  "CMakeFiles/hydra_util.dir/util/bitvec.cpp.o.d"
  "CMakeFiles/hydra_util.dir/util/rng.cpp.o"
  "CMakeFiles/hydra_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/hydra_util.dir/util/stats.cpp.o"
  "CMakeFiles/hydra_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/hydra_util.dir/util/strings.cpp.o"
  "CMakeFiles/hydra_util.dir/util/strings.cpp.o.d"
  "libhydra_util.a"
  "libhydra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
