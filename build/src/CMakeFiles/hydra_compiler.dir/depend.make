# Empty dependencies file for hydra_compiler.
# This may be replaced when dependencies are built.
