#include "ltlf/eval.hpp"

namespace hydra::ltlf {

bool eval(const Formula& f, const Trace& trace, std::size_t pos) {
  switch (f.op) {
    case Op::kAtom:
      return pos < trace.size() &&
             trace[pos][static_cast<std::size_t>(f.atom)];
    case Op::kNot:
      return !eval(*f.kids[0], trace, pos);
    case Op::kAnd:
      return eval(*f.kids[0], trace, pos) && eval(*f.kids[1], trace, pos);
    case Op::kOr:
      return eval(*f.kids[0], trace, pos) || eval(*f.kids[1], trace, pos);
    case Op::kNext:
      return pos + 1 < trace.size() && eval(*f.kids[0], trace, pos + 1);
    case Op::kUntil:
      for (std::size_t j = pos; j < trace.size(); ++j) {
        if (eval(*f.kids[1], trace, j)) return true;
        if (!eval(*f.kids[0], trace, j)) return false;
      }
      return false;
    case Op::kEventually:
      for (std::size_t j = pos; j < trace.size(); ++j) {
        if (eval(*f.kids[0], trace, j)) return true;
      }
      return false;
    case Op::kGlobally:
      for (std::size_t j = pos; j < trace.size(); ++j) {
        if (!eval(*f.kids[0], trace, j)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace hydra::ltlf
