# Empty dependencies file for hydra_checkers.
# This may be replaced when dependencies are built.
