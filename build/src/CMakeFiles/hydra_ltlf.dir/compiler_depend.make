# Empty compiler generated dependencies file for hydra_ltlf.
# This may be replaced when dependencies are built.
