#include "forwarding/vlan_bridge.hpp"

namespace hydra::fwd {

void VlanBridgeProgram::add_member(int switch_id, int port,
                                   std::uint16_t vid) {
  switches_[switch_id].members[port].insert(vid);
}

void VlanBridgeProgram::add_l2_entry(int switch_id, std::uint16_t vid,
                                     std::uint64_t mac, int port) {
  switches_[switch_id].l2.insert_exact(
      {BitVec(16, vid), BitVec(48, mac)},
      {BitVec(16, static_cast<std::uint64_t>(port))});
}

VlanBridgeProgram::Decision VlanBridgeProgram::process(p4rt::Packet& pkt,
                                                       int in_port,
                                                       int switch_id) {
  Decision d;
  const auto it = switches_.find(switch_id);
  if (it == switches_.end() || !pkt.vlan) {
    d.drop = true;
    d.reason = "no_vlan";
    return d;
  }
  PerSwitch& sw = it->second;
  const std::uint16_t vid = pkt.vlan->vid;
  // Ingress VLAN membership check.
  const auto mem = sw.members.find(in_port);
  if (mem == sw.members.end() || mem->second.count(vid) == 0U) {
    membership_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    d.reason = "ingress_membership";
    return d;
  }
  const p4rt::TableEntry* e =
      sw.l2.lookup({BitVec(16, vid), BitVec(48, pkt.eth.dst)});
  if (e == nullptr) {
    l2_miss_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    d.reason = "l2_miss";
    return d;
  }
  const int out = static_cast<int>(e->action_data[0].value());
  const auto out_mem = sw.members.find(out);
  if (out_mem == sw.members.end() || out_mem->second.count(vid) == 0U) {
    membership_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    d.reason = "egress_membership";
    return d;
  }
  d.eg_port = out;
  return d;
}

}  // namespace hydra::fwd
