// Traffic generators for the evaluation harness:
//   * PingProbe     — "fast ping" RTT measurement (Figure 12);
//   * UdpFlood      — iperf3-style constant-bit-rate UDP load (§6.2);
//   * CampusReplay  — synthetic stand-in for the paper's anonymized campus
//                     trace (350 Kpps): a heavy-tailed mix of TCP/UDP flows
//                     with empirical packet sizes.
//
// All three are TickTargets: steady-state generation reschedules the
// generator itself (no per-send closure) and builds packets in place in
// the network's pool (no per-send Packet temporaries), so a warmed-up run
// allocates nothing on the hot path.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace hydra::net {

struct RttSample {
  double sent_at = 0.0;
  double rtt = 0.0;  // seconds
};

// Sends ICMP echo requests from `src_host` to `dst_host` every `interval_s`
// and records RTTs via the destination's automatic echo responder.
//
// The ICMP sequence field is 16 bits, so a long fast-ping run wraps it:
// send/echo state lives in a 65536-slot ring indexed by the wire sequence
// number, and `next_seq_` counts the full (unwrapped) send sequence. A
// slot's send time is overwritten 65536 pings later — far beyond any
// plausible in-flight RTT.
class PingProbe : public TickTarget {
 public:
  PingProbe(Network& net, int src_host, int dst_host, double interval_s,
            std::uint16_t ident = 1);

  void start(double t0, double duration_s);
  void tick(SimTime now) override;

  const std::vector<RttSample>& samples() const { return samples_; }
  std::vector<double> rtts() const;
  std::uint64_t sent() const { return sent_; }
  std::int64_t lost() const {
    return static_cast<std::int64_t>(sent_) -
           static_cast<std::int64_t>(samples_.size());
  }

 private:
  static constexpr std::size_t kSeqRing = 65536;  // one slot per wire seq

  Network& net_;
  int src_host_;
  int dst_host_;
  double interval_s_;
  std::uint16_t ident_;
  double deadline_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t next_seq_ = 0;  // unwrapped; wire seq is next_seq_ % 65536
  std::vector<double> sent_times_;   // ring: wire seq -> send time (<0 unused)
  std::vector<std::uint8_t> echoed_; // ring: reply already sampled (dedup)
  std::vector<RttSample> samples_;
};

// UDP flow between two hosts: constant bit rate by default, or Poisson
// arrivals at the same mean rate (set_poisson) for realistic queueing.
class UdpFlood : public TickTarget {
 public:
  UdpFlood(Network& net, int src_host, int dst_host, double rate_gbps,
           int packet_bytes = 1400, std::uint16_t sport = 5001,
           std::uint16_t dport = 5201);

  // Exponentially distributed inter-arrivals with the same mean rate.
  void set_poisson(std::uint64_t seed) {
    poisson_ = true;
    rng_ = Rng(seed);
  }

  void start(double t0, double duration_s);
  void tick(SimTime now) override;
  std::uint64_t packets_sent() const { return sent_; }

 private:
  Network& net_;
  int src_host_;
  int dst_host_;
  double interval_s_;
  int packet_bytes_;
  std::uint16_t sport_;
  std::uint16_t dport_;
  double deadline_ = 0.0;
  std::uint64_t sent_ = 0;
  bool poisson_ = false;
  Rng rng_{0};
};

// Synthetic campus-trace replay: Poisson arrivals at `pps`, flows drawn
// from a heavy-tailed population, bimodal packet sizes (~60% small ACK-ish,
// ~40% MTU-ish), ~85% TCP / 15% UDP — the observable mix of a campus
// uplink, replayed towards one leaf as in Figure 13.
class CampusReplay : public TickTarget {
 public:
  CampusReplay(Network& net, int src_host, int dst_host, double pps,
               std::uint64_t seed = 42);

  void start(double t0, double duration_s);
  void tick(SimTime now) override;
  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t bytes_sent() const { return bytes_; }

 private:
  void synthesize_into(p4rt::Packet& p);

  Network& net_;
  int src_host_;
  int dst_host_;
  double pps_;
  Rng rng_;
  double deadline_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> flows_;
};

}  // namespace hydra::net
