# Empty compiler generated dependencies file for ltlf_compile.
# This may be replaced when dependencies are built.
