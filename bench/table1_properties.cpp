// Regenerates Table 1: for every property, the Indus LoC, the generated P4
// LoC, and the Tofino-model resource estimate (pipeline stages and PHV%)
// when linked against the Aether fabric-upf baseline.
//
//   $ ./table1_properties
#include <cstdio>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"

int main() {
  using namespace hydra;
  const auto baseline = compiler::fabric_upf_profile();

  std::printf("Table 1: Hydra properties (baseline: Aether %s profile)\n\n",
              baseline.name.c_str());
  std::printf("%-32s %12s %12s %8s %9s\n", "Property", "Indus LoC",
              "P4 Out LoC", "Stages", "PHV (%)");
  std::printf("%-32s %12s %12s %8d %9.2f\n", "Baseline", "-", "-",
              baseline.stages, baseline.phv_percent);

  bool all_fit = true;
  for (const auto& spec : checkers::table1_checkers()) {
    const auto c = compiler::compile_checker(spec.source, spec.name);
    std::printf("%-32s %12d %12d %8d %9.2f\n", spec.name.c_str(),
                c.indus_loc, c.p4_loc, c.linked.stages,
                c.linked.phv_percent);
    all_fit = all_fit && c.linked.fits;
  }

  std::printf("\nShape checks vs. the paper:\n");
  std::printf("  * every checker links without adding pipeline stages "
              "(parallel placement): %s\n",
              all_fit ? "yes" : "NO");
  double min_ratio = 1e9;
  for (const auto& spec : checkers::table1_checkers()) {
    const auto c = compiler::compile_checker(spec.source, spec.name);
    min_ratio = std::min(
        min_ratio, static_cast<double>(c.p4_loc) /
                       static_cast<double>(c.indus_loc));
  }
  std::printf("  * Indus is consistently more concise than generated P4 "
              "(min expansion %.1fx)\n", min_ratio);
  return all_fit ? 0 : 1;
}
