// Wire layout of the Hydra telemetry header generated for a checker.
//
// The compiler serializes every tele field (scalars, list slots, list fill
// counters) into a dedicated header carried between the Ethernet header and
// the original payload, tagged by a reserved EtherType — matching the
// paper's generated `hydra_header_t` plus parser/deparser (§4.1).
//
// Two layouts are supported for the ablation in DESIGN.md §5.3:
//   * packed: fields at exact bit offsets (minimal wire bytes);
//   * byte-aligned: every field starts on a byte boundary (cheaper PHV
//     slicing on hardware, more wire bytes).
#pragma once

#include <vector>

#include "ir/ir.hpp"

namespace hydra::compiler {

struct LayoutEntry {
  ir::FieldId field;
  int offset_bits = 0;
  int width = 0;
};

struct TelemetryLayout {
  std::vector<LayoutEntry> entries;
  bool byte_aligned = false;
  int payload_bits = 0;  // telemetry fields only
  int wire_bytes = 0;    // ceil(payload/8) + encapsulation preamble

  // 2-byte Hydra EtherType tag prepended so end hosts and non-Hydra
  // switches can skip the telemetry (stripped at the last hop).
  static constexpr int kPreambleBytes = 2;
  static constexpr int kHydraEtherType = 0x88B5;  // IEEE local experimental
};

TelemetryLayout layout_telemetry(const ir::CheckerIR& ir,
                                 bool byte_aligned = false);

}  // namespace hydra::compiler
