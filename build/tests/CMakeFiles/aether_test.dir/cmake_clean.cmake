file(REMOVE_RECURSE
  "CMakeFiles/aether_test.dir/aether_test.cpp.o"
  "CMakeFiles/aether_test.dir/aether_test.cpp.o.d"
  "aether_test"
  "aether_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aether_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
