// Network topology: nodes (switches and hosts) connected by bidirectional
// links with latency and rate. Includes builders for the topologies the
// paper evaluates on: the 2x2 leaf-spine of Figure 8 / Figure 10 and
// general leaf-spine / fat-tree shapes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hydra::net {

enum class NodeKind { kSwitch, kHost };

struct PortRef {
  int node = -1;
  int port = -1;
  bool operator==(const PortRef&) const = default;
};

struct NodeSpec {
  NodeKind kind = NodeKind::kSwitch;
  std::string name;
  // Hosts carry addressing; switches carry a numeric id used by checkers.
  std::uint32_t ip = 0;
  std::uint64_t mac = 0;
};

struct LinkSpec {
  PortRef a;
  PortRef b;
  double latency_s = 2e-6;  // per-direction propagation
  double gbps = 100.0;
  // Per-direction drop-tail buffer capacity; the default models a shallow
  // switch port buffer.
  double buffer_bytes = 1024.0 * 1024.0;
};

class Topology {
 public:
  int add_switch(const std::string& name);
  int add_host(const std::string& name, std::uint32_t ip);
  int add_link(PortRef a, PortRef b, double latency_s = 2e-6,
               double gbps = 100.0,
               double buffer_bytes = 1024.0 * 1024.0);

  const std::vector<NodeSpec>& nodes() const { return nodes_; }
  const std::vector<LinkSpec>& links() const { return links_; }
  const NodeSpec& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  std::optional<PortRef> peer(PortRef p) const;
  int link_index(PortRef p) const;  // -1 if unconnected
  bool is_host(int node_id) const {
    return node(node_id).kind == NodeKind::kHost;
  }
  // True if the switch port faces a host (an edge port).
  bool host_facing(PortRef p) const;
  int find_node(const std::string& name) const;  // -1 if absent

  // Highest port number in use on `node` (ports are dense from 0 upward by
  // convention but gaps are allowed).
  int max_port(int node) const;

 private:
  int node_checked(int id) const;

  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
};

// A built leaf-spine fabric with its id maps. Port conventions:
//   leaf ports [1 .. H]     -> hosts
//   leaf ports [H+1 .. H+S] -> spines (port H+1+j to spine j)
//   spine ports [1 .. L]    -> leaves (port 1+i to leaf i)
//   host port 0             -> its leaf
struct LeafSpine {
  Topology topo;
  std::vector<int> leaves;              // switch ids
  std::vector<int> spines;              // switch ids
  std::vector<std::vector<int>> hosts;  // hosts[leaf][i] = host id
  int hosts_per_leaf = 0;

  int leaf_uplink_port(int spine_index) const {
    return hosts_per_leaf + 1 + spine_index;
  }
  int leaf_host_port(int host_index) const { return 1 + host_index; }
  int spine_down_port(int leaf_index) const { return 1 + leaf_index; }
};

// Hosts are addressed 10.0.<leaf+1>.<n> as in the paper's Figure 8.
LeafSpine make_leaf_spine(int num_leaves, int num_spines, int hosts_per_leaf,
                          double host_link_gbps = 10.0,
                          double fabric_link_gbps = 100.0,
                          double latency_s = 2e-6);

// A k-ary three-tier fat tree (k even): k pods of k/2 edge + k/2 agg
// switches, (k/2)^2 cores, k/2 hosts per edge. Port conventions:
//   edge  ports [1 .. k/2]     -> hosts
//   edge  ports [k/2+1 .. k]   -> aggs of its pod (in agg order)
//   agg   ports [1 .. k/2]     -> edges of its pod (in edge order)
//   agg   ports [k/2+1 .. k]   -> its core group (cores a*(k/2) + j)
//   core  port  [pod+1]        -> the owning agg of that pod
// Hosts are addressed 10.<pod+1>.<edge+1>.<host+2>; each edge owns a /24
// and each pod a /16.
struct FatTree {
  Topology topo;
  int k = 0;
  std::vector<int> cores;
  std::vector<std::vector<int>> aggs;   // aggs[pod][a]
  std::vector<std::vector<int>> edges;  // edges[pod][e]
  // hosts[pod][edge][i]
  std::vector<std::vector<std::vector<int>>> hosts;

  int edge_host_port(int host_index) const { return 1 + host_index; }
  int edge_up_port(int agg_index) const { return k / 2 + 1 + agg_index; }
  int agg_down_port(int edge_index) const { return 1 + edge_index; }
  int agg_up_port(int core_offset) const { return k / 2 + 1 + core_offset; }
  int core_pod_port(int pod) const { return 1 + pod; }
  // Tier of a switch node id: 0 = edge, 1 = agg, 2 = core; -1 for hosts.
  int tier(int node) const;
  std::uint32_t pod_prefix(int pod) const {
    return (10u << 24) | (static_cast<std::uint32_t>(pod + 1) << 16);
  }
  std::uint32_t edge_prefix(int pod, int edge) const {
    return pod_prefix(pod) | (static_cast<std::uint32_t>(edge + 1) << 8);
  }
};

FatTree make_fat_tree(int k, double host_link_gbps = 10.0,
                      double fabric_link_gbps = 40.0,
                      double latency_s = 2e-6);

}  // namespace hydra::net
