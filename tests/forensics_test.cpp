// Forensics subsystem tests: flight-recorder ring semantics, end-to-end
// ViolationReport assembly, cross-engine byte-identical forensics JSON,
// the zero-allocation disabled path, and the engine phase profiler's
// Chrome trace-event export.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "obs/forensics.hpp"
#include "obs/profiler.hpp"

using namespace hydra;

// ---- flight recorder (unit) -----------------------------------------------

TEST(FlightRecorder, WraparoundKeepsNewest) {
  obs::FlightRecorder rec(2, 4);
  for (int i = 0; i < 10; ++i) {
    obs::HopRecord& r = rec.append(1);
    r.packet_id = 7;
    r.hop = i + 1;
  }
  EXPECT_EQ(rec.recorded(), 10u);

  std::vector<const obs::HopRecord*> out;
  rec.collect(7, out);
  ASSERT_EQ(out.size(), 4u);
  // The four newest records survive, returned oldest-first.
  std::vector<int> hops;
  for (const auto* r : out) hops.push_back(r->hop);
  EXPECT_EQ(hops, (std::vector<int>{7, 8, 9, 10}));

  // Other rings and other packet ids are untouched by the wrap.
  out.clear();
  rec.collect(8, out);
  EXPECT_TRUE(out.empty());
  obs::HopRecord& other = rec.append(0);
  other.packet_id = 9;
  out.clear();
  rec.collect(9, out);
  EXPECT_EQ(out.size(), 1u);

  rec.clear();
  out.clear();
  rec.collect(7, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, AppendResetsSlot) {
  obs::FlightRecorder rec(1, 1);
  obs::HopRecord& a = rec.append(0);
  a.packet_id = 1;
  a.add_table_hit(0, 3, true);
  obs::HopRecord& b = rec.append(0);  // overwrites the only slot
  EXPECT_EQ(b.packet_id, 0u);
  EXPECT_EQ(b.n_table_hits, 0);
}

TEST(HopRecord, OverflowSetsTruncationBits) {
  obs::HopRecord r;
  for (int i = 0; i < obs::HopRecord::kMaxTableHits + 2; ++i) {
    r.add_table_hit(0, i, true);
  }
  EXPECT_EQ(r.n_table_hits, obs::HopRecord::kMaxTableHits);
  EXPECT_NE(r.truncated & obs::HopRecord::kTruncTableHits, 0);
  EXPECT_EQ(r.truncated & obs::HopRecord::kTruncRegTouches, 0);

  for (int i = 0; i < obs::HopRecord::kMaxRegTouches + 1; ++i) {
    r.add_reg_touch(0, true, 1, 2);
  }
  EXPECT_NE(r.truncated & obs::HopRecord::kTruncRegTouches, 0);
  for (int i = 0; i < obs::HopRecord::kMaxTele + 1; ++i) {
    r.add_tele(static_cast<std::int16_t>(i), 5);
  }
  EXPECT_NE(r.truncated & obs::HopRecord::kTruncTele, 0);
  // Retained prefix is intact.
  EXPECT_EQ(r.table_hits[2].entry, 2);
  r.reset();
  EXPECT_EQ(r.truncated, 0);
  EXPECT_EQ(r.n_tele, 0);
}

// ---- end-to-end assembly --------------------------------------------------

namespace {

struct Bed {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);
  int dep = net.deploy(compile_library_checker("stateful_firewall"));

  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }

  void allow(int a, int b) {
    for (const auto& [s, d] : {std::pair{a, b}, std::pair{b, a}}) {
      net.dict_insert_all(dep, "allowed",
                          {BitVec(32, ip(s)), BitVec(32, ip(d))},
                          {BitVec::from_bool(true)});
    }
  }

  void send(int from, int to, std::uint16_t sport = 40000) {
    net.send_from_host(from,
                       p4rt::make_udp(ip(from), ip(to), sport, 80, 64));
    net.events().run();
  }
};

}  // namespace

TEST(Forensics, ViolationReportEndToEnd) {
  Bed bed;
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.net.set_forensics(true);
  EXPECT_TRUE(bed.net.observability_enabled());  // implied
  EXPECT_TRUE(bed.net.forensics_enabled());

  bed.allow(h0, h2);
  bed.send(h0, h2);  // allowed: delivered, no violation
  EXPECT_TRUE(bed.net.violation_reports().empty());

  const int intruder = bed.fabric.hosts[0][1];
  bed.send(intruder, h2);  // unsolicited: rejected at last hop
  ASSERT_EQ(bed.net.violation_reports().size(), 1u);
  const obs::ViolationReport& v = bed.net.violation_reports().front();

  EXPECT_EQ(v.kind, "reject");
  ASSERT_EQ(v.checkers.size(), 1u);
  EXPECT_EQ(v.checkers[0], "stateful_firewall");
  // Cross-leaf path: leaf -> spine -> leaf.
  EXPECT_EQ(v.hop_count, 3);
  ASSERT_EQ(v.hops.size(), 3u);
  EXPECT_FALSE(v.truncated);
  EXPECT_TRUE(v.hops.front().first_hop);
  EXPECT_TRUE(v.hops.back().last_hop);
  EXPECT_EQ(v.hops.back().switch_id, v.switch_id);

  // Every hop carries the checker's execution with tele values; the
  // verdict hop ran the check block and shows the `allowed` table miss.
  for (const auto& h : v.hops) {
    ASSERT_EQ(h.checkers.size(), 1u);
    EXPECT_TRUE(h.checkers[0].ran_tele);
    EXPECT_FALSE(h.checkers[0].tele.empty());
  }
  const obs::ViolationHopChecker& last = v.hops.back().checkers[0];
  EXPECT_TRUE(last.ran_check);
  EXPECT_TRUE(last.reject);
  const bool saw_allowed_miss =
      std::any_of(last.table_hits.begin(), last.table_hits.end(),
                  [](const obs::ViolationHopChecker::TableHit& th) {
                    return th.table == "allowed" && !th.hit;
                  });
  EXPECT_TRUE(saw_allowed_miss);

  const std::string narrative = obs::violation_narrative(v);
  EXPECT_NE(narrative.find("VIOLATION (reject)"), std::string::npos);
  EXPECT_NE(narrative.find("stateful_firewall"), std::string::npos);
  EXPECT_NE(narrative.find("table allowed: MISS"), std::string::npos);

  bed.net.clear_violation_reports();
  EXPECT_TRUE(bed.net.violation_reports().empty());
}

TEST(Forensics, RingEvictionMarksReportTruncated) {
  Bed bed;
  const int h2 = bed.fabric.hosts[1][0];
  // Single-slot rings: the second packet's first-hop record evicts the
  // first packet's before the latter's verdict commits.
  bed.net.set_forensics(true, /*ring_capacity=*/1);
  const int a = bed.fabric.hosts[0][0];
  const int b = bed.fabric.hosts[0][1];
  bed.net.send_from_host(a, p4rt::make_udp(bed.ip(a), bed.ip(h2), 41000, 80,
                                           64));
  bed.net.send_from_host(b, p4rt::make_udp(bed.ip(b), bed.ip(h2), 41001, 80,
                                           64));
  bed.net.events().run();

  ASSERT_EQ(bed.net.violation_reports().size(), 2u);
  const obs::ViolationReport& first = bed.net.violation_reports()[0];
  EXPECT_TRUE(first.truncated);
  EXPECT_LT(first.hops.size(), 3u);
  EXPECT_NE(obs::violation_narrative(first).find("wrapped"),
            std::string::npos);
}

TEST(Forensics, ByteIdenticalAcrossEngines) {
  auto run = [](net::EngineKind kind, int workers) {
    Bed bed;
    bed.net.set_engine(kind, workers);
    bed.net.set_forensics(true);
    const int h0 = bed.fabric.hosts[0][0];
    const int h2 = bed.fabric.hosts[1][0];
    bed.allow(h0, h2);
    // A burst of mixed allowed/unsolicited flows injected at one instant,
    // so the parallel engine actually fans out.
    bed.net.events().schedule_at(1e-4, [&] {
      for (int i = 0; i < 12; ++i) {
        const int src = bed.fabric.hosts[0][i % 2];
        bed.net.send_from_host(
            src, p4rt::make_udp(bed.ip(src), bed.ip(h2),
                                static_cast<std::uint16_t>(42000 + i), 80,
                                64));
      }
    });
    bed.net.events().run();
    return bed.net.violation_reports_json();
  };

  const std::string base = run(net::EngineKind::kSerial, 0);
  EXPECT_NE(base.find("\"kind\": \"reject\""), std::string::npos);
  for (const int workers : {1, 2, 8}) {
    EXPECT_EQ(base, run(net::EngineKind::kParallel, workers))
        << "parallel:" << workers << " vs serial";
  }
}

TEST(Forensics, DisabledPathPerformsNoForensicsAllocations) {
  const std::uint64_t before = obs::forensics_allocations();
  {
    Bed bed;
    const int h0 = bed.fabric.hosts[0][0];
    const int h2 = bed.fabric.hosts[1][0];
    bed.allow(h0, h2);
    bed.send(h0, h2);
    bed.send(bed.fabric.hosts[0][1], h2);  // rejected, but no recorder
    EXPECT_FALSE(bed.net.forensics_enabled());
    EXPECT_TRUE(bed.net.violation_reports().empty());
  }
  EXPECT_EQ(obs::forensics_allocations(), before);

  // Arming charges the rings once; a violation charges its report.
  {
    Bed bed;
    bed.net.set_forensics(true);
    const std::uint64_t armed = obs::forensics_allocations();
    EXPECT_GT(armed, before);
    bed.send(bed.fabric.hosts[0][1], bed.fabric.hosts[1][0]);
    EXPECT_EQ(obs::forensics_allocations(), armed + 1);  // one report
    // Steady-state recording itself never charges: replaying the same
    // violating flow adds exactly one charge per assembled report.
    bed.send(bed.fabric.hosts[0][1], bed.fabric.hosts[1][0], 40001);
    EXPECT_EQ(obs::forensics_allocations(), armed + 2);
  }
}

// ---- engine phase profiler ------------------------------------------------

namespace {

// Minimal structural JSON check: quotes balance, braces/brackets nest and
// close, and the document is a single object.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

}  // namespace

TEST(EngineProfiler, ParallelEngineEmitsChromeTrace) {
  Bed bed;
  bed.net.set_engine(net::EngineKind::kParallel, 4);
  bed.net.set_engine_profiling(true);
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.allow(h0, h2);
  bed.net.events().schedule_at(1e-4, [&] {
    for (int i = 0; i < 16; ++i) {
      bed.net.send_from_host(
          h0, p4rt::make_udp(bed.ip(h0), bed.ip(h2),
                             static_cast<std::uint16_t>(43000 + i), 80, 64));
    }
  });
  bed.net.events().run();

  obs::EngineProfiler& prof = bed.net.engine_profiler();
  EXPECT_GT(prof.span_count(), 0u);
  const std::string trace = prof.to_chrome_trace_json();
  EXPECT_TRUE(json_well_formed(trace)) << trace.substr(0, 200);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"M\""), std::string::npos);  // thread names
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);  // spans
  EXPECT_NE(trace.find("\"name\": \"pop_window\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"epoch\""), std::string::npos);

  // Phase histograms landed in the registry (shard compute histograms are
  // folded in at drain barriers).
  obs::Registry& reg = bed.net.metrics();
  EXPECT_GT(reg.counter_value("engine.epochs"), 0u);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("engine.phase.pop_window_us"), std::string::npos);
  EXPECT_NE(json.find("engine.phase.compute_us"), std::string::npos);

  prof.clear();
  EXPECT_EQ(prof.span_count(), 0u);
}

TEST(EngineProfiler, SerialEngineRecordsHopSpans) {
  Bed bed;
  bed.net.set_engine_profiling(true);
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.allow(h0, h2);
  bed.send(h0, h2);

  obs::EngineProfiler& prof = bed.net.engine_profiler();
  EXPECT_GT(prof.span_count(), 0u);
  const std::string trace = prof.to_chrome_trace_json();
  EXPECT_TRUE(json_well_formed(trace));
  EXPECT_NE(trace.find("\"name\": \"hop\""), std::string::npos);
  EXPECT_EQ(prof.dropped_spans(), 0u);
}

TEST(EngineProfiler, OffMeansOff) {
  Bed bed;
  EXPECT_FALSE(bed.net.engine_profiling_enabled());
  EXPECT_THROW(bed.net.engine_profiler(), std::logic_error);
  bed.net.set_observability(true);  // observability alone does not arm it
  EXPECT_FALSE(bed.net.engine_profiling_enabled());
}
