file(REMOVE_RECURSE
  "CMakeFiles/hydra_net.dir/net/event.cpp.o"
  "CMakeFiles/hydra_net.dir/net/event.cpp.o.d"
  "CMakeFiles/hydra_net.dir/net/host.cpp.o"
  "CMakeFiles/hydra_net.dir/net/host.cpp.o.d"
  "CMakeFiles/hydra_net.dir/net/link.cpp.o"
  "CMakeFiles/hydra_net.dir/net/link.cpp.o.d"
  "CMakeFiles/hydra_net.dir/net/network.cpp.o"
  "CMakeFiles/hydra_net.dir/net/network.cpp.o.d"
  "CMakeFiles/hydra_net.dir/net/switch_node.cpp.o"
  "CMakeFiles/hydra_net.dir/net/switch_node.cpp.o.d"
  "CMakeFiles/hydra_net.dir/net/topology.cpp.o"
  "CMakeFiles/hydra_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/hydra_net.dir/net/traffic.cpp.o"
  "CMakeFiles/hydra_net.dir/net/traffic.cpp.o.d"
  "libhydra_net.a"
  "libhydra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
