#include "net/event.hpp"

#include <limits>
#include <stdexcept>

namespace hydra::net {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
}  // namespace

void EventQueue::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.fn = std::move(fn);
  cl_heap_.push(std::move(item));
}

void EventQueue::schedule_switch_at(SimTime t, int sw, int in_port,
                                    p4rt::Packet pkt) {
  if (t < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.is_switch_work = true;
  item.work.sw = sw;
  item.work.in_port = in_port;
  item.work.pkt = std::move(pkt);
  sw_heap_.push(std::move(item));
}

void EventQueue::schedule_control_at(SimTime t, int sw,
                                     std::unique_ptr<ControlOp> op) {
  if (t < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.is_switch_work = true;
  item.work.sw = sw;
  item.work.ctl = std::move(op);
  sw_heap_.push(std::move(item));
}

SimTime EventQueue::next_time() const {
  return switch_heap_first() ? sw_heap_.top().t : cl_heap_.top().t;
}

SimTime EventQueue::next_closure_time() const {
  return cl_heap_.empty() ? kInf : cl_heap_.top().t;
}

SimTime EventQueue::next_switch_time() const {
  return sw_heap_.empty() ? kInf : sw_heap_.top().t;
}

bool EventQueue::switch_heap_first() const {
  if (sw_heap_.empty()) return false;
  if (cl_heap_.empty()) return true;
  const Item& s = sw_heap_.top();
  const Item& c = cl_heap_.top();
  return s.t < c.t || (s.t == c.t && s.seq < c.seq);
}

EventQueue::Item EventQueue::pop_heap_top(Heap& heap) {
  // Move out before pop so handlers may schedule more events.
  Item item = std::move(const_cast<Item&>(heap.top()));
  heap.pop();
  return item;
}

EventQueue::Item EventQueue::pop_next() {
  return pop_heap_top(switch_heap_first() ? sw_heap_ : cl_heap_);
}

void EventQueue::pop_window(SimTime limit, SimTime window_end,
                            std::vector<Item>& out) {
  if (empty()) return;
  const SimTime t0 = next_time();
  while (!empty()) {
    const SimTime t = next_time();
    if (t > limit || (t != t0 && t >= window_end)) break;
    out.push_back(pop_next());
  }
}

void EventQueue::run_self(SimTime t) {
  while (!empty() && next_time() <= t) {
    Item item = pop_next();
    now_ = item.t;
    if (item.is_switch_work) {
      throw std::logic_error(
          "switch work scheduled on an EventQueue with no executor");
    }
    item.fn();
  }
}

void EventQueue::run_until(SimTime t) {
  if (executor_ != nullptr) {
    executor_->drain(*this, t);
  } else {
    run_self(t);
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run() {
  if (executor_ != nullptr) {
    executor_->drain(*this, kInf);
  } else {
    run_self(kInf);
  }
}

}  // namespace hydra::net
