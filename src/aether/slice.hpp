// Slice configuration model (§5.2): a slice connects an isolated group of
// mobile clients and carries a prioritized list of application filtering
// rules of the form
//     priority : ip-prefix : ip-proto : l4-port : action
// shared by every client of the slice.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hydra::aether {

enum class FilterAction { kDeny = 1, kAllow = 2 };

struct FilteringRule {
  int priority = 0;
  std::uint32_t app_prefix = 0;
  int prefix_len = 0;  // 0 = any address
  std::optional<std::uint8_t> proto;  // nullopt = any protocol
  std::uint16_t port_lo = 0;          // [0, 0xffff] = any port
  std::uint16_t port_hi = 0xffff;
  FilterAction action = FilterAction::kDeny;

  // The paper's textual form, e.g. "20:0.0.0.0/0:UDP:81:allow".
  std::string to_string() const;
  bool matches(std::uint32_t ip, std::uint8_t proto_v,
               std::uint16_t port) const;
  // Identity of the *match* (not the action/priority): used to decide
  // whether an Applications entry can be shared.
  bool same_match(const FilteringRule& other) const;
};

struct Client {
  std::uint64_t imsi = 0;
  std::uint32_t ue_ip = 0;
  std::uint32_t teid = 0;  // GTP tunnel id assigned at attach
};

struct Slice {
  std::uint32_t id = 0;
  std::string name;
  std::vector<FilteringRule> rules;

  // Policy ground truth: the action the *current* rules prescribe for a
  // given application flow (highest priority wins; default deny).
  FilterAction decide(std::uint32_t app_ip, std::uint8_t proto,
                      std::uint16_t port) const;
};

// The two-rule example from §5.2: deny all (prio 10), allow UDP 81 (prio 20).
Slice example_camera_slice(std::uint32_t id);

}  // namespace hydra::aether
