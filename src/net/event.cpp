#include "net/event.hpp"

#include <stdexcept>

namespace hydra::net {

void EventQueue::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  heap_.push(Item{t, next_seq_++, std::move(fn)});
}

void EventQueue::run_until(SimTime t) {
  while (!heap_.empty() && heap_.top().t <= t) {
    // Copy out before pop so the handler may schedule more events.
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.t;
    item.fn();
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run() {
  while (!heap_.empty()) {
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.t;
    item.fn();
  }
}

}  // namespace hydra::net
