file(REMOVE_RECURSE
  "CMakeFiles/hydra_aether.dir/aether/controller.cpp.o"
  "CMakeFiles/hydra_aether.dir/aether/controller.cpp.o.d"
  "CMakeFiles/hydra_aether.dir/aether/slice.cpp.o"
  "CMakeFiles/hydra_aether.dir/aether/slice.cpp.o.d"
  "libhydra_aether.a"
  "libhydra_aether.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_aether.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
