// L2 bridging with VLAN isolation within a rack (one of the Aether fabric
// features, §5.2): forwarding matches (vlan, dst MAC), and a frame may only
// egress ports configured for its VLAN. The Hydra "VLAN isolation" checker
// verifies the isolation property independently of this implementation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <set>

#include "net/switch_node.hpp"
#include "p4rt/table.hpp"

namespace hydra::fwd {

class VlanBridgeProgram : public net::ForwardingProgram {
 public:
  // Port membership: which VLANs a port carries on a given switch.
  void add_member(int switch_id, int port, std::uint16_t vid);
  // Static L2 entry: (vid, mac) -> port.
  void add_l2_entry(int switch_id, std::uint16_t vid, std::uint64_t mac,
                    int port);

  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override;
  std::string name() const override { return "vlan-bridge"; }

  void invalidate_caches() override {
    for (auto& [id, sw] : switches_) sw.l2.invalidate_cache();
  }

  std::uint64_t membership_drops() const {
    return membership_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t l2_miss_drops() const {
    return l2_miss_drops_.load(std::memory_order_relaxed);
  }

 private:
  // Mutable lookup state is per switch (confined to one engine shard);
  // the totals are relaxed atomics.
  struct PerSwitch {
    std::map<int, std::set<std::uint16_t>> members;  // port -> vids
    p4rt::Table l2{"l2",
                   {{p4rt::MatchKind::kExact, 16},
                    {p4rt::MatchKind::kExact, 48}}};
  };
  std::map<int, PerSwitch> switches_;
  std::atomic<std::uint64_t> membership_drops_{0};
  std::atomic<std::uint64_t> l2_miss_drops_{0};
};

}  // namespace hydra::fwd
