// Match-action table runtime. Backs both the tables generated from Indus
// control variables and the hand-written forwarding pipelines (ECMP
// routing, UPF, VLAN bridging).
//
// Supports the match kinds real P4 targets offer — exact, ternary
// (value/mask), LPM, and range — with ternary/range disambiguated by entry
// priority (higher wins), matching Tofino TCAM semantics.
//
// Lookup is served by a kind-aware index, mirroring how hardware splits a
// table across SRAM hash units and TCAM:
//   * entries whose every field pins a single key value (exact fields,
//     full-mask ternary, full-length LPM, single-point ranges) live in a
//     hash map over the concatenated key bits — O(1) per packet;
//   * entries with one true LPM field and otherwise pinned fields live in
//     per-prefix-length hash maps, probed for every installed length;
//   * everything else (partial ternary masks, wildcards, real ranges) stays
//     in a priority-sorted residue scanned with an early exit once the best
//     hit so far dominates all remaining residue priorities.
// A per-table last-hit cache short-circuits the flow-skewed traffic the
// benches generate. All paths return the same winner as the reference
// linear scan: highest priority, ties broken by insertion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ir.hpp"
#include "obs/metrics.hpp"
#include "util/bitvec.hpp"

namespace hydra::p4rt {

using ir::MatchKind;

// Hot-path lookup counters. Detached (free) by default; attach handles
// from an obs::Registry to start counting. Several table instances may
// share one set of handles to aggregate (e.g. the same checker table
// across every switch).
struct TableMetrics {
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter cache_hits;  // lookups served by the last-hit cache
};

struct MatchFieldSpec {
  MatchKind kind = MatchKind::kExact;
  int width = 32;
};

// One field's pattern within an entry.
struct KeyPattern {
  BitVec value{32, 0};
  BitVec mask{32, 0};  // ternary: 1-bits must match; exact: full mask
  int prefix_len = 0;  // lpm
  BitVec lo{32, 0};    // range
  BitVec hi{32, 0};

  static KeyPattern exact(BitVec v);
  static KeyPattern ternary(BitVec v, BitVec m);
  static KeyPattern wildcard(int width);
  static KeyPattern lpm(BitVec v, int prefix_len);
  static KeyPattern range(BitVec lo, BitVec hi);
};

struct TableEntry {
  int priority = 0;  // higher wins among multiple matches
  std::vector<KeyPattern> patterns;
  std::string action;            // action name (informational)
  std::vector<BitVec> action_data;
};

// Caller-owned flattening scratch for Table::lookup_shared. One per
// lookup-issuing thread context (an engine worker's interpreter, or a
// thread_local in a forwarding program); capacity is reused across
// lookups so the hot path never allocates in steady state.
struct TableScratch {
  std::vector<std::uint64_t> raw;
  std::vector<std::uint64_t> flat;
};

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<MatchFieldSpec> key_spec);

  const std::string& name() const { return name_; }
  const std::vector<MatchFieldSpec>& key_spec() const { return key_spec_; }

  // Inserts an entry; throws std::invalid_argument on arity mismatch.
  void insert(TableEntry entry);
  // Convenience for fully-exact entries.
  void insert_exact(const std::vector<BitVec>& key,
                    std::vector<BitVec> action_data,
                    const std::string& action = "hit", int priority = 0);
  // Removes all entries whose patterns match `patterns` on the fields the
  // table's match kinds actually consult (exact: value; ternary/lpm:
  // mask and masked value; range: bounds). Returns count.
  //
  // When every query field pins a single key value and the table has never
  // seen a duplicate pinned entry, this is O(1): one hash probe plus a
  // swap-with-last removal and local reindex (the million-session churn
  // path). Otherwise it falls back to the reference scan + full index
  // rebuild. NOTE the swap reorders storage, so equal-priority ties among
  // surviving entries follow the post-removal storage order — consistent
  // between lookup() and lookup_linear_reference(), which both key ties on
  // storage order.
  int remove_if_key_equals(const std::vector<KeyPattern>& patterns);
  void clear();
  std::size_t size() const { return entries_.size(); }
  const std::vector<TableEntry>& entries() const { return entries_; }

  // Index of an entry returned by lookup() within entries(), or -1 for a
  // pointer this table does not own. Pure pointer arithmetic — used by the
  // forensics layer to record *which* entry matched without adding any
  // bookkeeping to the lookup hot path.
  std::int32_t entry_index_of(const TableEntry* e) const {
    if (e == nullptr || entries_.empty()) return -1;
    const std::ptrdiff_t d = e - entries_.data();
    if (d < 0 || d >= static_cast<std::ptrdiff_t>(entries_.size())) return -1;
    return static_cast<std::int32_t>(d);
  }

  // Highest-priority matching entry, or nullptr on miss. Ties broken by
  // insertion order (earlier wins), like most switch runtimes. Served by
  // the index; bit-identical to lookup_linear_reference().
  const TableEntry* lookup(const std::vector<BitVec>& key) const;

  // Concurrency-safe lookup for the parallel engine's flow-affinity mode,
  // where several workers may probe the SAME table instance at once. Same
  // winner as lookup(), but all per-lookup mutable state lives in the
  // caller's scratch: no last-hit cache read or write (the cache cells are
  // the only mutable state lookup() touches), and no shared flatten
  // buffers. The index structures are read-only here; concurrent callers
  // must not insert/remove. `hits`/`misses` metrics still count (atomic
  // slots); `cache_hits` never ticks on this path — which is why flow mode
  // requires observability off (a live cache_hits counter would diverge
  // from serial execution).
  const TableEntry* lookup_shared(const std::vector<BitVec>& key,
                                  TableScratch& scratch) const;

  // The original O(entries) scan, kept as the semantic reference for
  // differential testing and as the baseline in bench/table_scale.
  const TableEntry* lookup_linear_reference(
      const std::vector<BitVec>& key) const;

  // For keyless "config" tables: the default action data.
  void set_default(std::vector<BitVec> action_data);
  const std::vector<BitVec>& default_data() const { return default_data_; }

  // Observability: counts every lookup() outcome through the attached
  // handles. Entry counts are exposed via size() and pulled at snapshot
  // time rather than counted here.
  void attach_metrics(const TableMetrics& metrics) { metrics_ = metrics; }

  // Drops the last-hit cache. Lookup results are unaffected; only which of
  // `hits`/`cache_hits` ticks next changes. Full-state snapshots call this
  // so a snapshotting process and its cache-cold restored twin keep their
  // cache-hit counters on identical trajectories.
  void invalidate_cache() const { cache_state_ = CacheState::kInvalid; }

 private:
  static bool matches(const KeyPattern& p, MatchKind kind, const BitVec& v);
  static bool pattern_equal(MatchKind kind, const KeyPattern& a,
                            const KeyPattern& b);
  // Top-`len` bits of a `width`-bit field.
  static std::uint64_t prefix_mask(int width, int len);

  struct FlatKeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& v) const;
  };
  using FlatMap = std::unordered_map<std::vector<std::uint64_t>, std::uint32_t,
                                     FlatKeyHash>;

  // Per-field classification of an entry's pattern against the table spec.
  struct FieldClass {
    bool pins_single_key = false;  // matches exactly one flattened key value
    bool lpm_general = false;      // contiguous partial prefix on an LPM field
    int prefix = 0;                // valid when lpm_general
    std::uint64_t bits = 0;        // valid when pins_single_key
  };
  static FieldClass classify_field(const KeyPattern& p,
                                   const MatchFieldSpec& spec);

  // True when entry `a` beats entry `b` under the reference semantics
  // (higher priority, ties to the earlier-inserted = lower index).
  bool better(std::uint32_t a, std::uint32_t b) const;
  bool could_beat(std::uint32_t a, std::uint32_t b) const;
  void index_entry(std::uint32_t idx);
  // Removes entry `idx` from whichever index structure holds it. Only
  // valid while dup_pinned_ == 0 (each pinned key maps to one entry).
  void unindex_entry(std::uint32_t idx);
  // Swap-with-last removal: unindexes `idx`, moves the last entry into its
  // slot, and reindexes the moved entry under its new index.
  void remove_entry(std::uint32_t idx);
  void rebuild_index();
  // Flattens `key` into `raw` (raw values, for the cache) and `flat`
  // (per-spec-masked values, for the hash probes).
  void flatten_into(const std::vector<BitVec>& key,
                    std::vector<std::uint64_t>& raw,
                    std::vector<std::uint64_t>& flat) const;
  // Index-probe core shared by lookup() and lookup_shared(): exact map,
  // per-prefix LPM maps (mutates flat[lpm_field_] in place), then the
  // sorted residue scan. Returns the winning entry index or -1. Touches no
  // Table mutable state, so concurrent callers with distinct scratch
  // vectors are safe.
  std::int64_t probe_index(const std::vector<BitVec>& key,
                           const std::vector<std::uint64_t>& raw,
                           std::vector<std::uint64_t>& flat) const;

  std::string name_;
  std::vector<MatchFieldSpec> key_spec_;
  std::vector<TableEntry> entries_;
  std::vector<BitVec> default_data_;
  TableMetrics metrics_;  // detached unless observability is wired

  // ---- index (maintained by insert and removal) -------------------------
  int lpm_field_ = -1;  // position of the table's single LPM field, or -1
  FlatMap exact_;
  // prefix length -> hash map over (pinned fields ++ masked LPM field).
  std::map<int, FlatMap, std::greater<int>> lpm_;
  // Residue entries, bucketed by their FIRST field when it pins a single
  // key value (the shape the Aether policy/application tables take: exact
  // slice or UE ip up front, partial ternary behind it). A probe only
  // scans the bucket for its own field-0 bits, merged in better() order
  // with residue_any_ — entries whose field 0 does not pin. Each vector is
  // sorted (priority desc, index asc) so the scan keeps its early exit.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
      residue_buckets_;
  std::vector<std::uint32_t> residue_any_;
  // Times a pinned insert collided with an already-indexed pinned entry
  // (duplicate key). Sticky until rebuild_index()/clear(): while nonzero,
  // the hash maps under-describe the duplicates, so removal falls back to
  // the reference scan + rebuild.
  std::uint64_t dup_pinned_ = 0;

  // ---- per-lookup scratch + last-hit cache (single-threaded sim) --------
  enum class CacheState { kInvalid, kValid };
  mutable std::vector<std::uint64_t> raw_scratch_;
  mutable std::vector<std::uint64_t> flat_scratch_;
  mutable std::vector<std::uint64_t> cache_key_;
  mutable std::int64_t cache_idx_ = -1;  // entry index, or -1 for miss
  mutable CacheState cache_state_ = CacheState::kInvalid;
};

}  // namespace hydra::p4rt
