#include "compiler/relocate.hpp"

#include <map>

namespace hydra::compiler {

namespace {

enum class FieldClass { kStable, kTrueLatch, kOther };

// Is this rvalue the literal constant true (bit value 1)?
bool is_const_true(const ir::RValue& rv) {
  return rv.kind == ir::RKind::kConst && rv.cval.as_bool() &&
         rv.cval.width() == 1;
}

// Classifies every tele field by how the telemetry block writes it.
class FieldClassifier {
 public:
  explicit FieldClassifier(const ir::CheckerIR& ir) : ir_(ir) {
    for (std::size_t i = 0; i < ir.fields.size(); ++i) {
      if (ir.fields[i].space == ir::Space::kTele) {
        classes_[static_cast<int>(i)] = FieldClass::kStable;
      }
    }
    scan(ir.tele_block);
  }

  FieldClass classify(ir::FieldId f) const {
    const auto it = classes_.find(f.id);
    return it == classes_.end() ? FieldClass::kOther : it->second;
  }

 private:
  void demote(ir::FieldId f, FieldClass to) {
    const auto it = classes_.find(f.id);
    if (it == classes_.end()) return;
    // kStable can become kTrueLatch or kOther; kTrueLatch only kOther.
    if (to == FieldClass::kOther || it->second == FieldClass::kStable) {
      it->second = to;
    }
  }

  void scan(const std::vector<ir::InstrPtr>& body) {
    for (const auto& instr : body) {
      switch (instr->kind) {
        case ir::InstrKind::kAssign:
          demote(instr->dst, is_const_true(*instr->value)
                                 ? FieldClass::kTrueLatch
                                 : FieldClass::kOther);
          break;
        case ir::InstrKind::kTableLookup:
          for (const auto& d : instr->dsts) demote(d, FieldClass::kOther);
          if (instr->hit_dst.valid()) {
            demote(instr->hit_dst, FieldClass::kOther);
          }
          break;
        case ir::InstrKind::kRegRead:
          demote(instr->dst, FieldClass::kOther);
          break;
        case ir::InstrKind::kPush: {
          // Pushing mutates slots and the counter.
          const auto& list =
              ir_.lists[static_cast<std::size_t>(instr->list)];
          for (const auto& s : list.slots) demote(s, FieldClass::kOther);
          demote(list.count, FieldClass::kOther);
          break;
        }
        case ir::InstrKind::kIf:
          scan(instr->then_body);
          scan(instr->else_body);
          break;
        default:
          break;
      }
    }
  }

  const ir::CheckerIR& ir_;
  std::map<int, FieldClass> classes_;
};

class Analyzer {
 public:
  explicit Analyzer(const ir::CheckerIR& ir) : ir_(ir), classes_(ir) {}

  RelocationAnalysis run() {
    RelocationAnalysis out;
    std::string why;
    if (check_body(ir_.check_block, why)) {
      out.relocatable = true;
      out.reason = "check block is a monotone predicate over stable/"
                   "latched telemetry; per-hop rejection is sound";
    } else {
      out.relocatable = false;
      out.reason = why;
    }
    return out;
  }

 private:
  // positive=true means the expression appears under an even number of
  // negations, so a latch turning true can only make the condition truer.
  bool cond_ok(const ir::RValue& rv, bool positive, std::string& why) {
    switch (rv.kind) {
      case ir::RKind::kConst:
        return true;
      case ir::RKind::kField: {
        const ir::Field& f = ir_.field(rv.field);
        if (f.space != ir::Space::kTele) {
          why = "condition reads non-telemetry state ('" + f.name +
                "'), which differs across hops";
          return false;
        }
        switch (classes_.classify(rv.field)) {
          case FieldClass::kStable:
            return true;
          case FieldClass::kTrueLatch:
            if (!positive) {
              why = "latched field '" + f.name +
                    "' appears under a negation; an early hop could "
                    "reject a packet the last hop would accept";
              return false;
            }
            return true;
          case FieldClass::kOther:
            why = "field '" + f.name +
                  "' is mutated non-monotonically by the telemetry block";
            return false;
        }
        return false;
      }
      case ir::RKind::kUnary:
        if (rv.unop == indus::UnOp::kNot) {
          return cond_ok(*rv.args[0], !positive, why);
        }
        return cond_ok(*rv.args[0], positive, why);
      case ir::RKind::kBinary:
        if (rv.binop == indus::BinOp::kAnd ||
            rv.binop == indus::BinOp::kOr) {
          return cond_ok(*rv.args[0], positive, why) &&
                 cond_ok(*rv.args[1], positive, why);
        }
        // Comparisons are not monotone in latch inputs: require that all
        // operands are stable (constant along the path).
        return stable_only(*rv.args[0], why) && stable_only(*rv.args[1], why);
      case ir::RKind::kAbsDiff:
        return stable_only(*rv.args[0], why) && stable_only(*rv.args[1], why);
    }
    return false;
  }

  bool stable_only(const ir::RValue& rv, std::string& why) {
    if (rv.kind == ir::RKind::kField) {
      const ir::Field& f = ir_.field(rv.field);
      if (f.space != ir::Space::kTele ||
          classes_.classify(rv.field) != FieldClass::kStable) {
        why = "comparison operand '" + f.name +
              "' is not stable along the path";
        return false;
      }
      return true;
    }
    for (const auto& a : rv.args) {
      if (!stable_only(*a, why)) return false;
    }
    return true;
  }

  bool check_body(const std::vector<ir::InstrPtr>& body, std::string& why) {
    for (const auto& instr : body) {
      switch (instr->kind) {
        case ir::InstrKind::kReject:
        case ir::InstrKind::kReport:
          break;  // payloads may read anything
        case ir::InstrKind::kIf:
          if (!cond_ok(*instr->cond, /*positive=*/true, why)) return false;
          // An else branch fires under the NEGATED condition, so the
          // condition must be monotone in both polarities to guard it.
          if (!instr->else_body.empty() &&
              !cond_ok(*instr->cond, /*positive=*/false, why)) {
            return false;
          }
          if (!check_body(instr->then_body, why)) return false;
          if (!check_body(instr->else_body, why)) return false;
          break;
        case ir::InstrKind::kAssign:
        case ir::InstrKind::kTableLookup:
        case ir::InstrKind::kRegRead:
        case ir::InstrKind::kRegWrite:
        case ir::InstrKind::kPush:
          why = "check block mutates state or reads per-switch tables";
          return false;
      }
    }
    return true;
  }

  const ir::CheckerIR& ir_;
  FieldClassifier classes_;
};

}  // namespace

RelocationAnalysis analyze_relocation(const ir::CheckerIR& ir) {
  return Analyzer(ir).run();
}

}  // namespace hydra::compiler
