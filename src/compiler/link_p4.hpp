// Automatic linking of generated checker code with the forwarding program
// (§4.2 — the paper places blocks by hand and leaves automation as future
// work). Given a forwarding-pipeline skeleton and a compiled checker, the
// linker produces the per-role P4 program:
//
//   * edge switches:  HydraInit at the START of ingress (before any
//     forwarding rewrites), the forwarding ingress, then forwarding
//     egress followed by HydraTelemetry and — last — HydraChecker with
//     the telemetry strip;
//   * core switches:  forwarding code plus HydraTelemetry only (unless
//     the checker was compiled for per-hop placement, in which case the
//     checker block is linked everywhere).
//
// Because networks are bidirectional, edge switches end up running all
// three blocks, exactly as the paper describes.
#pragma once

#include <string>

#include "compiler/compile.hpp"

namespace hydra::compiler {

// A forwarding program's linkable shape: its header declarations and the
// bodies of its ingress/egress apply blocks.
struct ForwardingSkeleton {
  std::string name;
  std::string headers;       // header/table declarations (verbatim text)
  std::string ingress_body;  // statements inside ingress apply { }
  std::string egress_body;   // statements inside egress apply { }

  // The Aether mobile-core pipeline the paper links against (abridged to
  // its table structure: bridging/VLAN, UPF sessions/applications/
  // terminations, ACL, ECMP routing).
  static ForwardingSkeleton fabric_upf();
  // A minimal L3 router (the source-routing testbed's other profile).
  static ForwardingSkeleton simple_router();
};

enum class SwitchRole { kEdge, kCore };

struct LinkedProgram {
  std::string p4_code;
  SwitchRole role = SwitchRole::kEdge;
  bool runs_init = false;
  bool runs_checker = false;
  int p4_loc = 0;
};

LinkedProgram link_p4(const CompiledChecker& checker,
                      const ForwardingSkeleton& forwarding, SwitchRole role);

}  // namespace hydra::compiler
