# Empty compiler generated dependencies file for fat_tree_test.
# This may be replaced when dependencies are built.
