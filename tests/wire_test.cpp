// Tests for the byte-exact telemetry wire codec and the network's
// wire-validation mode (serialize -> parse round trip at every hop).
#include <gtest/gtest.h>

#include "checkers/library.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "p4rt/tele_codec.hpp"
#include "util/rng.hpp"

namespace hydra::p4rt {
namespace {

compiler::CompiledChecker compile(const std::string& src,
                                  bool byte_aligned = false) {
  compiler::CompileOptions opts;
  opts.byte_aligned_layout = byte_aligned;
  return compiler::compile_checker(src, "wire", opts);
}

TeleFrame random_frame(const compiler::CompiledChecker& c, Rng& rng) {
  TeleFrame f;
  f.checker = 0;
  for (const auto& field : c.ir.fields) {
    if (field.space == ir::Space::kTele) {
      f.values.emplace_back(field.width, rng.next());
    } else {
      f.values.emplace_back(field.width, 0);
    }
  }
  return f;
}

void expect_roundtrip(const compiler::CompiledChecker& c,
                      const TeleFrame& f) {
  const auto bytes = serialize_frame(c.layout, c.ir, f);
  ASSERT_EQ(bytes.size(), static_cast<std::size_t>(c.layout.wire_bytes));
  const TeleFrame back = parse_frame(c.layout, c.ir, 0, bytes);
  for (std::size_t i = 0; i < f.values.size(); ++i) {
    if (c.ir.fields[i].space != ir::Space::kTele) continue;
    EXPECT_EQ(back.values[i].value(), f.values[i].value())
        << c.ir.fields[i].name;
  }
}

TEST(TeleCodec, ScalarRoundTrip) {
  const auto c = compile(
      "tele bit<8> a;\ntele bit<32> b;\ntele bool f;\n{ } { } { }");
  Rng rng(1);
  for (int i = 0; i < 50; ++i) expect_roundtrip(c, random_frame(c, rng));
}

TEST(TeleCodec, UnalignedWidthsRoundTrip) {
  const auto c = compile(
      "tele bit<3> a;\ntele bit<13> b;\ntele bit<7> d;\ntele bit<33> e;\n"
      "{ } { } { }");
  Rng rng(2);
  for (int i = 0; i < 50; ++i) expect_roundtrip(c, random_frame(c, rng));
}

TEST(TeleCodec, ArraysAndCounterRoundTrip) {
  const auto c = compile(
      "tele bit<32>[5] xs;\ntele bool[3] flags;\n{ } { xs.push(1); "
      "flags.push(true); } { }");
  Rng rng(3);
  for (int i = 0; i < 50; ++i) expect_roundtrip(c, random_frame(c, rng));
}

TEST(TeleCodec, ByteAlignedLayoutRoundTrip) {
  const auto c = compile(
      "tele bit<3> a;\ntele bit<13> b;\ntele bool f;\n{ } { } { }",
      /*byte_aligned=*/true);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) expect_roundtrip(c, random_frame(c, rng));
}

TEST(TeleCodec, PreambleCarriesHydraEtherType) {
  const auto c = compile("tele bit<8> a;\n{ } { } { }");
  TeleFrame f;
  f.checker = 0;
  for (const auto& field : c.ir.fields) f.values.emplace_back(field.width, 0);
  const auto bytes = serialize_frame(c.layout, c.ir, f);
  EXPECT_EQ((bytes[0] << 8) | bytes[1],
            compiler::TelemetryLayout::kHydraEtherType);
}

TEST(TeleCodec, ParseRejectsBadInput) {
  const auto c = compile("tele bit<8> a;\n{ } { } { }");
  EXPECT_THROW(parse_frame(c.layout, c.ir, 0, {1, 2}),
               std::invalid_argument);
  std::vector<std::uint8_t> bad(static_cast<std::size_t>(c.layout.wire_bytes),
                                0);
  EXPECT_THROW(parse_frame(c.layout, c.ir, 0, bad), std::invalid_argument);
}

TEST(TeleCodec, SerializeRejectsWrongFrame) {
  const auto c = compile("tele bit<8> a;\n{ } { } { }");
  TeleFrame f;
  f.checker = 0;  // wrong size
  EXPECT_THROW(serialize_frame(c.layout, c.ir, f), std::invalid_argument);
}

// Every library checker's layout must round-trip random frames.
class CodecAllCheckers : public ::testing::TestWithParam<int> {};

TEST_P(CodecAllCheckers, RandomFramesRoundTrip) {
  const auto& spec =
      checkers::all_checkers()[static_cast<std::size_t>(GetParam())];
  const auto c = compiler::compile_checker(spec.source, spec.name);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 20; ++i) expect_roundtrip(c, random_frame(c, rng));
}

INSTANTIATE_TEST_SUITE_P(Library, CodecAllCheckers,
                         ::testing::Range(0, static_cast<int>(
                             checkers::all_checkers().size())),
                         [](const auto& info) {
                           return checkers::all_checkers()
                               [static_cast<std::size_t>(info.param)].name;
                         });

// End to end: the network's wire-validation mode round-trips frames at
// every hop and must stay silent for real traffic through real checkers.
TEST(WireValidation, EndToEndWithCheckersDeployed) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net.set_wire_validation(true);
  net.deploy(compile_library_checker("loops"));
  const int vf = net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(net, vf, fabric);
  net.deploy(compile_library_checker("application_filtering"));
  for (int i = 0; i < 20; ++i) {
    net.send_from_host(
        fabric.hosts[0][0],
        p4rt::make_udp(net.topo().node(fabric.hosts[0][0]).ip,
                       net.topo().node(fabric.hosts[1][0]).ip,
                       static_cast<std::uint16_t>(1000 + i), 2000, 100));
  }
  EXPECT_NO_THROW(net.events().run());
  EXPECT_EQ(net.counters().delivered, 20u);
}

TEST(WireValidation, SourceRoutedTrafficWithPathValidation) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto prog = std::make_shared<fwd::SourceRouteProgram>();
  for (int sw : fabric.leaves) net.set_program(sw, prog);
  for (int sw : fabric.spines) net.set_program(sw, prog);
  net.set_wire_validation(true);
  const int pv = net.deploy(
      compile_library_checker("source_routing_path_validation"));
  configure_path_validation(net, pv, fabric);
  p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 64);
  fwd::set_source_route(p, fwd::leaf_spine_route(fabric, fabric.hosts[0][0],
                                                 fabric.hosts[1][0], 0));
  net.send_from_host(fabric.hosts[0][0], std::move(p));
  EXPECT_NO_THROW(net.events().run());
  EXPECT_EQ(net.counters().delivered, 1u);
}

}  // namespace
}  // namespace hydra::p4rt
