// Reference interpreter for Indus, executing the *typed AST* directly.
//
// This is the executable semantics of the language (§3.2): variables live
// in named stores, dictionaries are plain maps, loops really iterate. It
// exists to differentially test the compiler: for any program and any
// input trace, running the AST here must produce exactly the same rejects,
// reports, and final telemetry as lowering to IR and running the pipeline
// interpreter (tests/differential_test.cpp).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "indus/ast.hpp"
#include "indus/typecheck.hpp"
#include "util/bitvec.hpp"

namespace hydra::indus {

// A value is one or more scalars (tuples flatten, in declaration order).
using RefValue = std::vector<BitVec>;

struct RefArray {
  std::vector<BitVec> slots;  // fixed capacity, zero-initialized
  int count = 0;
};

// Mutable evaluation state, spanning the packet (scalars/arrays) and the
// switch (sensors). Control state is installed by the test harness.
struct RefState {
  std::map<std::string, RefValue> scalars;  // tele scalars and tuples
  std::map<std::string, RefArray> arrays;   // tele arrays
  std::map<std::string, BitVec> sensors;

  // Control state: exact-match dictionaries (key = flattened values),
  // sets, and config scalars/arrays.
  std::map<std::string, std::map<std::vector<std::uint64_t>, RefValue>>
      dicts;
  std::map<std::string, std::set<std::vector<std::uint64_t>>> sets;
  std::map<std::string, RefValue> configs;
};

struct RefOutcome {
  bool reject = false;
  std::vector<RefValue> reports;
};

// Resolves header variables by annotation (same contract as p4rt).
using RefHeaderFn =
    std::function<BitVec(const std::string& annotation, int width)>;

class RefEvaluator {
 public:
  // `program` must be typechecked (Expr::type filled); `symbols` is the
  // table produced by typecheck().
  RefEvaluator(const Program& program, const SymbolTable& symbols);

  // Initializes tele state (declaration initializers, zeroed arrays) —
  // the "telemetry header injection" at the first hop.
  void init_packet_state(RefState& state) const;
  // Initializes sensor registers from their declarations.
  void init_switch_state(RefState& state) const;

  void run_init(RefState& state, const RefHeaderFn& hdr,
                RefOutcome& out) const;
  void run_tele(RefState& state, const RefHeaderFn& hdr,
                RefOutcome& out) const;
  void run_check(RefState& state, const RefHeaderFn& hdr,
                 RefOutcome& out) const;

 private:
  struct Frame;  // loop bindings
  RefValue eval(const Expr& e, RefState& state, const RefHeaderFn& hdr,
                const Frame* frame) const;
  BitVec eval1(const Expr& e, RefState& state, const RefHeaderFn& hdr,
               const Frame* frame) const;
  void exec(const Stmt& s, RefState& state, const RefHeaderFn& hdr,
            RefOutcome& out, const Frame* frame) const;
  void assign(const Expr& target, AssignOp op, RefValue value,
              RefState& state, const RefHeaderFn& hdr,
              const Frame* frame) const;
  int declared_width(const std::string& name, std::size_t part) const;

  const Program& program_;
  const SymbolTable& symbols_;
};

}  // namespace hydra::indus
