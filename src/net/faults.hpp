// Deterministic, seeded fault injection for the simulated fabric.
//
// A FaultPlan describes *what* can go wrong — scheduled link failures,
// random link flaps, per-link packet loss / telemetry corruption /
// duplication / reordering, switch restarts that wipe sensor registers,
// and delayed controller rule pushes. A FaultInjector turns the plan plus
// one seed into concrete outcomes.
//
// Determinism contract: every random draw comes from a per-fault-site
// stream (one xoshiro256** per (link, direction), one for the flap
// schedule of each link, one for control-plane delays), each seeded by
// SplitMix64 from (seed, site). The injector is only ever consulted from
// Network::transmit and the control-plane helpers, which run on the main
// thread in canonical (time, seq) commit order under BOTH the serial and
// the parallel engine — so a fixed seed yields bit-identical fault
// outcomes at any worker count. Flap schedules are precomputed at arm
// time for the same reason: no draw ever depends on engine interleaving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hydra::net {

// One scheduled outage of a link (both directions), in absolute sim time.
struct LinkFailure {
  int link = -1;
  double down_at = 0.0;
  double up_at = 0.0;
};

// One scheduled switch restart: at time `at` the switch's checker register
// state is wiped and its sensors run "cold" for the plan's warmup window.
struct SwitchRestart {
  int sw = -1;
  double at = 0.0;
};

// How telemetry corruption damages the wire bytes. kRandom picks one of
// the concrete modes per event; the targeted modes exist so tests can pin
// down one failure shape.
enum class CorruptMode { kRandom, kBadTag, kTruncate, kBitFlip };

struct FaultPlan {
  // Per-transmit probabilities, applied independently per (link, dir).
  double loss = 0.0;       // silently drop the packet
  double corrupt = 0.0;    // damage one telemetry frame's wire bytes
  double duplicate = 0.0;  // deliver the packet twice
  double reorder = 0.0;    // delay delivery by up to reorder_max_s
  double reorder_max_s = 50e-6;
  CorruptMode corrupt_mode = CorruptMode::kRandom;

  // Random link flaps: Poisson down events at `flap_rate_hz` per link,
  // each lasting `flap_down_s`, drawn over [0, horizon_s) at arm time.
  double flap_rate_hz = 0.0;
  double flap_down_s = 100e-6;
  double horizon_s = 0.0;

  // Scheduled faults.
  std::vector<LinkFailure> failures;
  std::vector<SwitchRestart> restarts;
  // How long a restarted switch's sensors stay cold (verdicts suppressed).
  double restart_warmup_s = 200e-6;

  // Controller rule pushes land after delay + uniform(0, jitter) instead
  // of instantly (per switch, via the ControlOp channel).
  double rule_push_delay_s = 0.0;
  double rule_push_jitter_s = 0.0;
};

// Everything the harness counts. Mirrored as fault.* gauges in the obs
// registry while a plan is armed; to_json() is deterministic (fixed key
// order, integers only) so chaos runs can be byte-compared across engines.
struct FaultStats {
  std::uint64_t loss_drops = 0;       // packets dropped by random loss
  std::uint64_t link_down_drops = 0;  // packets dropped on a downed link
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;      // frames damaged on the wire
  std::uint64_t tele_rejects = 0;     // fail-closed decode rejects
  std::uint64_t tele_recovered = 0;   // damaged frames that re-parsed OK
  std::uint64_t cold_suppressed = 0;  // verdicts suppressed post-restart
  std::uint64_t restarts = 0;
  std::uint64_t flaps = 0;            // link down events that took effect
  std::uint64_t delayed_pushes = 0;

  std::string to_json() const;
};

// What the injector decided for one transmit. `drop_reason` is a static
// string (never owned) so it can ride through forensics without
// allocation.
struct LinkFaultAction {
  bool drop = false;
  const char* drop_reason = nullptr;
  bool corrupt = false;
  std::uint64_t corrupt_entropy = 0;  // drives which frame/byte/bit
  bool duplicate = false;
  double extra_delay_s = 0.0;  // > 0 when reordered
};

class FaultInjector {
 public:
  // `num_links` fixes the per-site stream table; the plan's flap schedule
  // is precomputed here, before any packet flows.
  FaultInjector(const FaultPlan& plan, std::uint64_t seed, int num_links);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t seed() const { return seed_; }

  // Rolls the per-(link, dir) dice for one transmit. `has_tele` gates the
  // corruption roll (a frame-less packet has nothing to damage) — the roll
  // is still consumed so stream positions don't depend on packet content
  // beyond this documented bit. Main thread only.
  LinkFaultAction on_transmit(int link, int dir, bool has_tele);

  // Scheduled failures + precomputed flaps, merged; Network turns each
  // into a pair of down/up events at arm time.
  const std::vector<LinkFailure>& outages() const { return outages_; }

  // Link state bookkeeping (down events may overlap, hence a count).
  void link_down_event(int link);
  void link_up_event(int link);
  bool link_up(int link) const {
    return down_count_[static_cast<std::size_t>(link)] == 0;
  }

  // Delay for the next controller rule push: delay + uniform(0, jitter),
  // from a dedicated control-plane stream. Main thread only.
  double next_push_delay();

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  Rng& site_rng(int link, int dir) {
    return site_rngs_[static_cast<std::size_t>(link) * 2 +
                      static_cast<std::size_t>(dir)];
  }

  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  std::vector<Rng> site_rngs_;  // 2 per link: [link*2 + dir]
  Rng ctl_rng_;
  std::vector<int> down_count_;
  std::vector<LinkFailure> outages_;
  FaultStats stats_;
};

}  // namespace hydra::net
