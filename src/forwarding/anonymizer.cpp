#include "forwarding/anonymizer.hpp"

namespace hydra::fwd {

namespace {

// One keyed pseudo-random bit per (salt, prefix): the classic
// prefix-preserving construction (Crypto-PAn style, with a non-
// cryptographic mixer standing in for AES).
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t prefix_bit(std::uint64_t salt, std::uint64_t prefix, int len) {
  return mix(salt ^ (prefix * 0x9e3779b97f4a7c15ULL) ^
             static_cast<std::uint64_t>(len)) &
         1;
}

std::uint64_t anonymize_bits(std::uint64_t value, int width,
                             std::uint64_t salt) {
  std::uint64_t out = 0;
  std::uint64_t prefix = 0;
  for (int i = width - 1; i >= 0; --i) {
    const std::uint64_t bit = (value >> i) & 1;
    // The flip decision depends only on the (width-1-i)-bit prefix, so
    // equal prefixes anonymize equally.
    const std::uint64_t flip = prefix_bit(salt, prefix, width - 1 - i);
    out = (out << 1) | (bit ^ flip);
    prefix = (prefix << 1) | bit;
  }
  return out;
}

}  // namespace

std::uint32_t anonymize_ipv4(std::uint32_t addr, std::uint64_t salt) {
  return static_cast<std::uint32_t>(anonymize_bits(addr, 32, salt));
}

std::uint64_t anonymize_mac(std::uint64_t mac, std::uint64_t salt) {
  return anonymize_bits(mac & 0xffffffffffffULL, 48, salt ^ 0xacULL);
}

AnonymizerProgram::Decision AnonymizerProgram::process(p4rt::Packet& pkt,
                                                       int in_port,
                                                       int switch_id) {
  pkt.eth.src = anonymize_mac(pkt.eth.src, salt_);
  pkt.eth.dst = anonymize_mac(pkt.eth.dst, salt_);
  if (pkt.ipv4) {
    pkt.ipv4->src = anonymize_ipv4(pkt.ipv4->src, salt_);
    pkt.ipv4->dst = anonymize_ipv4(pkt.ipv4->dst, salt_);
  }
  if (pkt.inner_ipv4) {
    pkt.inner_ipv4->src = anonymize_ipv4(pkt.inner_ipv4->src, salt_);
    pkt.inner_ipv4->dst = anonymize_ipv4(pkt.inner_ipv4->dst, salt_);
  }
  // Payloads are discarded before traffic reaches researchers (the wire
  // size keeps a placeholder so rate experiments stay meaningful).
  count_.fetch_add(1, std::memory_order_relaxed);
  return inner_->process(pkt, in_port, switch_id);
}

}  // namespace hydra::fwd
