// Abstract syntax for Indus (paper Figure 4 plus the prototype extensions
// the paper's examples use: elsif chains, compound assignment, tuple
// expressions, report with a payload, multi-variable for loops, the `in`
// membership operator, list .push(), length(), and abs()).
//
// Nodes are "fat": a single Expr/Stmt struct with a kind discriminator and
// optional fields. This keeps the tree easy to build, clone, and walk in a
// compiler of this size without visitor boilerplate.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "indus/source_loc.hpp"
#include "indus/types.hpp"
#include "util/bitvec.hpp"

namespace hydra::indus {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kVar,      // name
  kNumber,   // numeric literal (width resolved during type checking)
  kBoolLit,  // true / false
  kUnary,    // op args[0]
  kBinary,   // args[0] op args[1]
  kIndex,    // args[0] [ args[1] ]   (array or dict lookup)
  kTuple,    // ( args... )
  kCall,     // name ( args... )      -- length, abs
  kIn,       // args[0] in args[1]    (membership in list/set)
};

enum class UnOp { kNot, kBitNot, kNeg };

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* unop_name(UnOp op);
const char* binop_name(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  Loc loc;

  std::string name;          // kVar, kCall
  std::uint64_t number = 0;  // kNumber
  bool bool_value = false;   // kBoolLit
  UnOp unop = UnOp::kNot;    // kUnary
  BinOp binop = BinOp::kAdd; // kBinary
  std::vector<ExprPtr> args;

  // Filled in by the type checker.
  TypePtr type;

  ExprPtr clone() const;
};

ExprPtr make_var(std::string name, Loc loc = {});
ExprPtr make_number(std::uint64_t value, Loc loc = {});
ExprPtr make_bool(bool value, Loc loc = {});
ExprPtr make_unary(UnOp op, ExprPtr operand, Loc loc = {});
ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, Loc loc = {});
ExprPtr make_index(ExprPtr base, ExprPtr index, Loc loc = {});
ExprPtr make_tuple(std::vector<ExprPtr> elems, Loc loc = {});
ExprPtr make_call(std::string name, std::vector<ExprPtr> args, Loc loc = {});
ExprPtr make_in(ExprPtr needle, ExprPtr haystack, Loc loc = {});

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kPass,
  kBlock,   // body
  kAssign,  // target (op)= value  -- target is kVar or kIndex
  kIf,      // cond/then plus elif chain and optional else
  kFor,     // for (vars in iters) body
  kPush,    // list.push(value)
  kReport,  // report; or report((e, ...));
  kReject,  // reject;
};

enum class AssignOp { kSet, kAdd, kSub };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct IfArm {
  ExprPtr cond;
  StmtPtr body;
};

struct Stmt {
  StmtKind kind;
  Loc loc;

  // kBlock
  std::vector<StmtPtr> body;

  // kAssign
  ExprPtr target;
  AssignOp assign_op = AssignOp::kSet;
  ExprPtr value;

  // kIf: arms[0] is the `if`, the rest are `elsif`s.
  std::vector<IfArm> arms;
  StmtPtr else_body;  // may be null

  // kFor
  std::vector<std::string> loop_vars;
  std::vector<ExprPtr> iterables;

  // kPush
  ExprPtr push_list;
  ExprPtr push_value;

  // kReport (payload may be empty)
  std::vector<ExprPtr> report_args;

  StmtPtr clone() const;
};

StmtPtr make_pass(Loc loc = {});
StmtPtr make_block(std::vector<StmtPtr> body, Loc loc = {});
StmtPtr make_assign(ExprPtr target, AssignOp op, ExprPtr value, Loc loc = {});
StmtPtr make_if(std::vector<IfArm> arms, StmtPtr else_body, Loc loc = {});
StmtPtr make_for(std::vector<std::string> vars, std::vector<ExprPtr> iters,
                 StmtPtr body, Loc loc = {});
StmtPtr make_push(ExprPtr list, ExprPtr value, Loc loc = {});
StmtPtr make_report(std::vector<ExprPtr> args, Loc loc = {});
StmtPtr make_reject(Loc loc = {});

// ---------------------------------------------------------------------------
// Declarations and programs
// ---------------------------------------------------------------------------

// Variable kinds (§3.2): tele travels on the packet, sensor lives on the
// switch, header/control are read-only views of data-/control-plane state.
enum class VarKind { kTele, kSensor, kHeader, kControl };

const char* var_kind_name(VarKind k);

struct Decl {
  VarKind kind;
  Loc loc;
  std::string name;
  // Untyped `control x;` declarations (paper Figure 2) default to bit<32>.
  TypePtr type;
  ExprPtr init;            // may be null
  std::string annotation;  // header binding, e.g. "hdr.ipv4.src_addr"
};

struct Program {
  std::vector<Decl> decls;
  StmtPtr init_block;   // first hop
  StmtPtr tele_block;   // every hop
  StmtPtr check_block;  // last hop

  const Decl* find_decl(const std::string& name) const;
};

}  // namespace hydra::indus
