file(REMOVE_RECURSE
  "libhydra_checkers.a"
)
