# Empty compiler generated dependencies file for ablation_header_layout.
# This may be replaced when dependencies are built.
