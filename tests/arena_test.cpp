// Arena storage contract tests (DESIGN.md "Arena storage"):
//   - handles stay valid (and object contents intact) across slab growth;
//   - the freelist reuses slots LIFO, with deterministic fresh-slab order;
//   - reset() is an epoch boundary: slots recycle, slabs are retained;
//   - the audit counter proves an in-capacity steady state allocates no
//     slabs;
//   - recycled objects keep their internal buffers (the allocation-free
//     steady-state mechanism);
// plus two network-level regressions that ride on the arena rework:
//   - typed tick events are observationally identical to the closure path
//     they replaced;
//   - PingProbe survives 16-bit ICMP sequence wraparound.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "util/arena.hpp"

namespace hydra {
namespace {

TEST(Arena, HandlesAndPointersSurviveSlabGrowth) {
  util::Arena<std::string> a(4);
  std::vector<util::Arena<std::string>::Handle> handles;
  std::vector<std::string*> ptrs;
  for (int i = 0; i < 4; ++i) {
    const auto h = a.alloc();
    a.get(h) = "slab0-" + std::to_string(i);
    handles.push_back(h);
    ptrs.push_back(&a.get(h));
  }
  // Force many slab growths.
  for (int i = 0; i < 100; ++i) a.alloc();
  EXPECT_GE(a.capacity(), 104u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(&a.get(handles[static_cast<std::size_t>(i)]),
              ptrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(a.get(handles[static_cast<std::size_t>(i)]),
              "slab0-" + std::to_string(i));
  }
}

TEST(Arena, FreshSlabAllocatesLowIndicesFirstAndFreelistIsLifo) {
  util::Arena<int> a(8);
  EXPECT_EQ(a.alloc(), 0u);
  EXPECT_EQ(a.alloc(), 1u);
  const auto h2 = a.alloc();
  EXPECT_EQ(h2, 2u);
  a.free(1u);
  a.free(h2);
  // LIFO: the most recently freed slot comes back first.
  EXPECT_EQ(a.alloc(), 2u);
  EXPECT_EQ(a.alloc(), 1u);
  EXPECT_EQ(a.alloc(), 3u);
  EXPECT_EQ(a.live(), 4u);
}

TEST(Arena, ResetRecyclesSlotsWithoutReleasingSlabs) {
  util::Arena<int> a(4);
  for (int i = 0; i < 10; ++i) a.alloc();  // three slabs
  const std::size_t cap = a.capacity();
  EXPECT_EQ(cap, 12u);
  const std::uint64_t slabs_before = util::arena_allocations();
  a.reset();
  EXPECT_EQ(a.live(), 0u);
  EXPECT_EQ(a.capacity(), cap);
  // Post-reset allocation order restarts at slab 0, slot 0.
  EXPECT_EQ(a.alloc(), 0u);
  EXPECT_EQ(a.alloc(), 1u);
  // reset() and in-capacity allocs grew nothing.
  EXPECT_EQ(util::arena_allocations(), slabs_before);
}

TEST(Arena, AuditCounterFlatInSteadyStateBumpedByGrowth) {
  util::Arena<int> a(16);
  a.alloc();  // first slab
  const std::uint64_t before = util::arena_allocations();
  // Churn within capacity: alloc/free cycles never grow a slab.
  for (int round = 0; round < 100; ++round) {
    std::vector<util::Arena<int>::Handle> hs;
    for (int i = 0; i < 15; ++i) hs.push_back(a.alloc());
    for (const auto h : hs) a.free(h);
  }
  EXPECT_EQ(util::arena_allocations(), before);
  for (int i = 0; i < 16; ++i) a.alloc();  // spills into a second slab
  EXPECT_EQ(util::arena_allocations(), before + 1);
}

TEST(Arena, RecycledObjectsKeepTheirBuffers) {
  util::Arena<std::vector<int>> a(2);
  const auto h = a.alloc();
  a.get(h).assign(1000, 7);
  const std::size_t cap = a.get(h).capacity();
  a.get(h).clear();  // caller-side reuse protocol (cf. Packet::reuse)
  a.free(h);
  const auto h2 = a.alloc();
  ASSERT_EQ(h2, h);  // LIFO hands the slot straight back
  EXPECT_TRUE(a.get(h2).empty());
  EXPECT_GE(a.get(h2).capacity(), cap);
}

// The typed kTick/pooled-send path must be observationally identical to
// the per-send closure path it replaced: same packets at the same times
// through the same fabric give byte-identical counters and metrics.
TEST(ArenaEventPath, TypedTickMatchesClosureScheduling) {
  struct Result {
    std::uint64_t injected, delivered;
    std::string metrics;
  };
  const auto run = [](bool typed) {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    fwd::install_leaf_spine_routing(net, fabric);
    net.set_observability(true);
    const int src = fabric.hosts[0][0];
    const int dst = fabric.hosts[1][1];
    const double rate_gbps = 0.4;
    const int bytes = 1400;
    const double dur = 5e-4;
    if (typed) {
      net::UdpFlood flood(net, src, dst, rate_gbps, bytes, 5001, 5201);
      flood.start(0.0, dur);
      net.events().run();
    } else {
      // The pre-arena idiom: a self-rescheduling closure building a
      // Packet temporary per send.
      const double interval =
          1.0 / (rate_gbps * 1e9 / (static_cast<double>(bytes) * 8.0));
      const double deadline = dur;
      const std::uint32_t sip = net.host(src).ip();
      const std::uint32_t dip = net.host(dst).ip();
      std::function<void()> send = [&] {
        if (net.events().now() > deadline) return;
        net.send_from_host(src,
                           p4rt::make_udp(sip, dip, 5001, 5201, bytes - 42));
        net.events().schedule_in(interval, send);
      };
      net.events().schedule_at(0.0, send);
      net.events().run();
    }
    return Result{net.counters().injected, net.counters().delivered,
                  net.metrics_json()};
  };
  const Result closure = run(false);
  const Result tick = run(true);
  EXPECT_GT(closure.injected, 0u);
  EXPECT_EQ(closure.injected, tick.injected);
  EXPECT_EQ(closure.delivered, tick.delivered);
  EXPECT_EQ(closure.metrics, tick.metrics);
}

// Regression: the probe's ICMP sequence is 16-bit on the wire. The seed
// implementation indexed unbounded per-seq vectors with the wrapped
// value, so ping 65536 aliased ping 0 and every later RTT sample was
// misattributed or dropped. The ring must keep samples exact far past the
// wrap.
TEST(PingProbeWrap, SurvivesSequenceWraparound) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net::PingProbe probe(net, fabric.hosts[0][0], fabric.hosts[1][0], 1e-6);
  probe.start(0.0, 0.07);  // ~70001 pings > 65536
  net.events().run();
  EXPECT_GT(probe.sent(), 65536u);
  EXPECT_EQ(probe.lost(), 0);
  ASSERT_EQ(probe.samples().size(), probe.sent());
  for (const auto& s : probe.samples()) {
    EXPECT_GT(s.rtt, 0.0);
    EXPECT_LT(s.rtt, 1e-3);
  }
}

}  // namespace
}  // namespace hydra
