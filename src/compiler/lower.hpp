// Lowering from the typed Indus AST to CheckerIR (§4.1 code generation):
//
//   * tele scalars/tuples  -> fields in the Hydra telemetry header
//   * tele arrays          -> header stacks (slots + fill counter)
//   * sensor variables     -> registers
//   * control dicts/sets   -> match-action tables, with the lookup placed
//                             immediately before the statement that uses it
//   * control scalars      -> keyless "config" tables read via their
//                             default action once per block
//   * for loops            -> fully unrolled over the static capacity,
//                             guarded by the fill counter
//   * dynamic array reads  -> if-chains (P4 has no dynamic stack indexing)
//   * abs(a - b)           -> saturating |a-b| (avoids wraparound)
#pragma once

#include <string>

#include "indus/typecheck.hpp"
#include "ir/ir.hpp"

namespace hydra::compiler {

// Lowers a parsed-and-typechecked program. Throws indus::CompileError on
// constructs the backend cannot express.
ir::CheckerIR lower(const indus::Program& program,
                    const indus::SymbolTable& symbols,
                    const std::string& checker_name);

}  // namespace hydra::compiler
