// hydrastat — one-shot observability snapshot tool.
//
// Rebuilds a canonical scenario with the observability layer enabled,
// traces a packet of interest, and dumps a combined JSON document
// (metrics snapshot + packet traces) plus a human-readable per-hop
// narrative of each traced packet.
//
//   $ ./hydrastat                          # aether scenario, JSON to stdout
//   $ ./hydrastat --scenario leafspine
//   $ ./hydrastat --out hydrastat.json     # narrative to stdout, JSON to file
//   $ ./hydrastat --engine parallel --workers 4   # replay on the parallel
//                                                 # engine; output identical
//
// Scenarios:
//   aether    — the §5.2 application-filtering bug: a client attaches, the
//               operator updates the slice's rules, and the client's retry
//               of previously-allowed traffic is silently dropped by the
//               UPF. The dropped packet is traced, so the narrative shows
//               the Hydra checker's report at the drop switch.
//   leafspine — a 2x2 leaf-spine running the stateful_firewall checker:
//               one allowed flow is delivered, one unsolicited flow is
//               rejected at its last hop. Both packets are traced.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include <cstdlib>

#include "cli_parse.hpp"

#include "aether/controller.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"

using namespace hydra;

namespace {

void aether_scenario(net::Network& net, const net::LeafSpine& fabric) {
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  auto upf = std::make_shared<fwd::UpfProgram>(routing);
  net.set_program(fabric.leaves[0], upf);
  const int dep = net.deploy(compile_library_checker("application_filtering"));
  net.set_observability(true);

  aether::AetherController ctl(net, upf, dep);
  ctl.define_slice(aether::example_camera_slice(1));

  const std::uint32_t enb = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t n3 = 0x0a0001fe;
  const std::uint32_t app = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t ue = 0x0a640001;
  const std::uint32_t teid = 1001;

  auto uplink = [&]() {
    p4rt::Packet inner = p4rt::make_udp(ue, app, 40000, 81, 64);
    net.send_from_host(fabric.hosts[0][0],
                       p4rt::gtpu_encap(inner, enb, n3, teid));
    net.events().run();
  };

  // Attach, verify the flow works, then apply the buggy rule update. A new
  // client attaching afterwards installs the updated rule as a fresh,
  // higher-priority shared application entry — which the pre-update client
  // has no termination for.
  ctl.attach_client(1, {123450001ULL, ue, teid}, enb, n3);
  uplink();
  aether::Slice updated = aether::example_camera_slice(1);
  updated.rules[1].port_hi = 82;
  updated.rules[1].priority = 30;
  ctl.update_slice_rules(1, updated.rules);
  ctl.attach_client(1, {123459999ULL, 0x0a6400f0, 2001}, enb, n3);

  // The old client retries its previously-allowed traffic; trace that
  // packet — the narrative shows the silent UPF drop and Hydra's report.
  net.trace_next(1);
  uplink();
}

void leafspine_scenario(net::Network& net, const net::LeafSpine& fabric) {
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(compile_library_checker("stateful_firewall"));
  net.set_observability(true);

  const std::uint32_t client = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t server = net.topo().node(fabric.hosts[1][0]).ip;
  net.dict_insert_all(dep, "allowed", {BitVec(32, client), BitVec(32, server)},
                      {BitVec::from_bool(true)});
  net.dict_insert_all(dep, "allowed", {BitVec(32, server), BitVec(32, client)},
                      {BitVec::from_bool(true)});

  net.trace_next(2);
  // Allowed flow: delivered end to end.
  net.send_from_host(fabric.hosts[0][0],
                     p4rt::make_udp(client, server, 40000, 80, 64));
  net.events().run();
  // Unsolicited flow from a host with no allow entry: rejected at last hop.
  const std::uint32_t intruder = net.topo().node(fabric.hosts[0][1]).ip;
  net.send_from_host(fabric.hosts[0][1],
                     p4rt::make_udp(intruder, server, 40001, 80, 64));
  net.events().run();
}

// Chaos parity with hydrascope: the same leaf-spine + stateful_firewall
// fabric under the full fault plan (loss, corruption, duplication,
// reordering, link flaps, a mid-run restart, delayed rule pushes), driven
// by one seed, with the observability layer on so the snapshot captures
// the fault-path counters. Deterministic: the same (plan, seed) replays
// bit-identically on either engine.
void chaos_scenario(net::Network& net, const net::LeafSpine& fabric,
                    std::uint64_t seed) {
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(compile_library_checker("stateful_firewall"));
  net.set_observability(true);

  net::FaultPlan plan;
  plan.loss = 0.02;
  plan.corrupt = 0.08;
  plan.duplicate = 0.03;
  plan.reorder = 0.05;
  plan.reorder_max_s = 40e-6;
  plan.flap_rate_hz = 1500.0;
  plan.flap_down_s = 150e-6;
  plan.horizon_s = 4e-3;
  plan.restarts.push_back({fabric.leaves[1], 1.2e-3});
  plan.restart_warmup_s = 400e-6;
  plan.rule_push_delay_s = 80e-6;
  plan.rule_push_jitter_s = 80e-6;
  net.arm_faults(plan, seed);

  const std::uint32_t client = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t server = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t intruder = net.topo().node(fabric.hosts[0][1]).ip;
  net.dict_insert_all_delayed(dep, "allowed",
                              {BitVec(32, client), BitVec(32, server)},
                              {BitVec::from_bool(true)});
  net.dict_insert_all_delayed(dep, "allowed",
                              {BitVec(32, server), BitVec(32, client)},
                              {BitVec::from_bool(true)});

  for (int i = 0; i < 240; ++i) {
    const double t = 8e-6 * (i + 1);
    const bool bad = i % 4 == 3;
    const int src_host = bad ? fabric.hosts[0][1] : fabric.hosts[0][0];
    const std::uint32_t src_ip = bad ? intruder : client;
    const auto sport = static_cast<std::uint16_t>(40000 + i % 16);
    net.events().schedule_at(t, [&net, src_host, src_ip, server, sport]() {
      net.send_from_host(src_host,
                         p4rt::make_udp(src_ip, server, sport, 80, 64));
    });
  }
  net.events().run();
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--scenario aether|leafspine] [--chaos SEED]\n"
               "          [--out FILE] [--prom FILE]\n"
               "          [--engine serial|parallel[:N]] [--workers N]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "aether";
  std::string out_path;
  std::string prom_path;
  net::EngineKind engine = net::EngineKind::kSerial;
  int workers = 0;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = true;
      if (!tools::parse_u64_arg(argv[0], "--chaos", argv[++i], &chaos_seed)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = net::parse_engine_kind(argv[++i], &workers);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      long w = 0;
      if (!tools::parse_long_arg(argv[0], "--workers", argv[++i], 0, 1024,
                                 &w)) {
        return usage(argv[0]);
      }
      workers = static_cast<int>(w);
    } else {
      return usage(argv[0]);
    }
  }

  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  // Engine choice never changes what a scenario observes — traces, reports
  // and metrics below are identical by the engine contract.
  net.set_engine(engine, workers);
  if (chaos) {
    scenario = "chaos";
    chaos_scenario(net, fabric, chaos_seed);
  } else if (scenario == "aether") {
    aether_scenario(net, fabric);
  } else if (scenario == "leafspine") {
    leafspine_scenario(net, fabric);
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 2;
  }

  for (const auto& trace : net.trace_sink().traces()) {
    std::printf("%s\n", obs::TraceSink::narrative(trace).c_str());
  }
  for (const auto& r : net.reports()) {
    std::printf("report: checker=%s switch=%d hop=%d flow=%s\n",
                r.checker.c_str(), r.switch_id, r.hop_count,
                r.flow.to_string().c_str());
  }

  std::string doc = "{\n\"scenario\": \"" + scenario + "\"";
  if (chaos) {
    doc += ",\n\"seed\": " + std::to_string(chaos_seed);
    doc += ",\n\"fault_stats\": " + net.fault_stats().to_json();
  }
  doc += ",\n\"metrics\": " + net.metrics_json() +
         ",\n\"traces\": " + net.trace_sink().to_json() + "\n}\n";
  if (out_path.empty()) {
    std::printf("%s", doc.c_str());
  } else {
    if (!tools::write_text_file(out_path, doc)) return 1;
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!prom_path.empty()) {
    // Prometheus text exposition format 0.0.4: serve the file with
    // `Content-Type: text/plain; version=0.0.4` (hydrad does); the body
    // ends with exactly one trailing newline.
    if (!tools::write_text_file(prom_path, net.export_prometheus())) return 1;
    std::printf("wrote %s\n", prom_path.c_str());
  }
  return 0;
}
