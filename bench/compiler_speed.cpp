// Microbenchmarks of the Indus compiler itself (the C++ analogue of the
// paper's ~2500-line OCaml compiler): lexing+parsing, type checking, and
// full compilation for every library checker.
//
//   $ ./compiler_speed
#include <benchmark/benchmark.h>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"
#include "indus/parser.hpp"
#include "indus/typecheck.hpp"

namespace {

const hydra::checkers::CheckerSpec& spec(int i) {
  return hydra::checkers::all_checkers()[static_cast<std::size_t>(i)];
}

void BM_Parse(benchmark::State& state) {
  const auto& s = spec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    hydra::indus::Diagnostics diags;
    auto p = hydra::indus::parse_indus(s.source, diags);
    benchmark::DoNotOptimize(p);
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_Parse)->DenseRange(0, 11);

void BM_Typecheck(benchmark::State& state) {
  const auto& s = spec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    hydra::indus::Diagnostics diags;
    auto p = hydra::indus::parse_indus(s.source, diags);
    auto syms = hydra::indus::typecheck(p, diags);
    benchmark::DoNotOptimize(syms);
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_Typecheck)->DenseRange(0, 11);

void BM_FullCompile(benchmark::State& state) {
  const auto& s = spec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = hydra::compiler::compile_checker(s.source, s.name);
    benchmark::DoNotOptimize(c);
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_FullCompile)->DenseRange(0, 11);

}  // namespace

BENCHMARK_MAIN();
