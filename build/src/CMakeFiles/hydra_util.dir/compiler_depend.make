# Empty compiler generated dependencies file for hydra_util.
# This may be replaced when dependencies are built.
