# Empty compiler generated dependencies file for ltlf_properties.
# This may be replaced when dependencies are built.
