// Discrete-event simulation core. Time is in seconds (double); events with
// equal timestamps fire in scheduling order (stable), which keeps runs
// deterministic for a fixed seed.
//
// Two event kinds live in the queue:
//   * generic closures (traffic generators, link arrivals, host delivery) —
//     opaque, always executed serially in (time, seq) order;
//   * switch work (a packet due for pipeline processing at a switch) —
//     carried as *data* so an installed execution engine can shard it by
//     switch id and run the per-hop pipeline on worker threads.
//
// Draining is delegated to an EventExecutor (see net/engine.hpp) when one
// is installed; net::Network installs a SerialEngine by default. A bare
// EventQueue with no executor drains itself one event at a time, exactly
// as before — standalone users (tests, examples) are unaffected.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "p4rt/packet.hpp"

namespace hydra::net {

using SimTime = double;

// A control-plane operation targeting ONE switch's checker state. Routed
// through the switch-work channel (not a generic closure) on purpose: a
// closure mutating switch state mid-window would race with the parallel
// engine's compute workers AND diverge from serial execution order.
// Carried as switch work, the operation is sharded to the worker that owns
// the switch and applied in (time, seq) order within that shard — so
// register wipes and delayed rule installs land between that switch's hops
// exactly as they would under the serial engine. Used by the
// fault-injection subsystem (switch restarts, delayed rule pushes).
struct ControlOp {
  enum class Kind { kRestart, kDictInsert };
  Kind kind = Kind::kRestart;
  // kDictInsert payload: an exact-match entry for one checker table.
  int deployment = -1;
  std::string var;
  std::vector<BitVec> key;
  std::vector<BitVec> value;
};

// The hot-path event: one packet arriving at one switch's pipeline — or,
// rarely, a control operation for that switch (ctl != nullptr, pkt unused).
struct SwitchWork {
  int sw = -1;
  int in_port = -1;
  p4rt::Packet pkt;
  std::unique_ptr<ControlOp> ctl;  // null on the packet hot path
};

class EventQueue;

// Drains the queue up to a time limit. Implemented by the execution
// engines; installed via EventQueue::set_executor.
class EventExecutor {
 public:
  virtual ~EventExecutor() = default;
  virtual void drain(EventQueue& queue, SimTime limit) = 0;
};

class EventQueue {
 public:
  // One scheduled event. `fn` is empty iff `is_switch_work`.
  struct Item {
    SimTime t = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool is_switch_work = false;
    SwitchWork work;
  };

  SimTime now() const { return now_; }

  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }
  // Schedules pipeline processing of `pkt` at switch `sw`.
  void schedule_switch_at(SimTime t, int sw, int in_port, p4rt::Packet pkt);
  void schedule_switch_in(SimTime delay, int sw, int in_port,
                          p4rt::Packet pkt) {
    schedule_switch_at(now_ + delay, sw, in_port, std::move(pkt));
  }
  // Schedules a control operation on switch `sw`'s shard (see ControlOp).
  void schedule_control_at(SimTime t, int sw, std::unique_ptr<ControlOp> op);

  bool empty() const { return cl_heap_.empty() && sw_heap_.empty(); }
  std::size_t pending() const { return cl_heap_.size() + sw_heap_.size(); }

  // Runs events until the queue is empty or `t` is passed; `now()` advances
  // to at most t. Delegates to the installed executor, if any.
  void run_until(SimTime t);
  void run();  // until empty

  // ---- executor-facing primitives ---------------------------------------
  // The executor owns the clock while draining: it must advance_now() to
  // each item's timestamp before executing/committing it, in (t, seq)
  // order, so handler-visible time matches serial execution exactly.
  void set_executor(EventExecutor* executor) { executor_ = executor; }
  bool has_ready(SimTime limit) const {
    return !empty() && next_time() <= limit;
  }
  SimTime next_time() const;  // earliest pending timestamp (queue non-empty)
  // Earliest pending generic closure / switch-work timestamp, or +infinity
  // when that kind has nothing pending. The parallel engine's adaptive
  // lookahead derives its sound window-extension bound from these: a
  // closure at time c can spawn switch work no earlier than c + lookahead,
  // and a switch commit at time s no earlier than s + min-link-delay +
  // lookahead (see net/engine.hpp). The queue keeps the two kinds in
  // separate heaps so both reads are O(1).
  SimTime next_closure_time() const;
  SimTime next_switch_time() const;
  // Pops the earliest item without advancing now().
  Item pop_next();
  // Pops every item with t <= limit that falls in [t0, window_end), where
  // t0 is the earliest pending timestamp; the t == t0 group is always
  // included even if window_end <= t0. Appends to `out` in (t, seq) order.
  void pop_window(SimTime limit, SimTime window_end, std::vector<Item>& out);
  void advance_now(SimTime t) { now_ = t; }

 private:
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  using Heap = std::priority_queue<Item, std::vector<Item>, Later>;

  void run_self(SimTime t);  // executor-free drain (standalone queues)
  // True when the next merged (t, seq) pop comes from the switch heap.
  bool switch_heap_first() const;
  static Item pop_heap_top(Heap& heap);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  // Split by kind; seq is a single shared stream, so merging the two tops
  // by (t, seq) reproduces the exact one-heap pop order.
  Heap cl_heap_;  // generic closures
  Heap sw_heap_;  // switch work (packet hops + control ops)
  EventExecutor* executor_ = nullptr;
};

}  // namespace hydra::net
