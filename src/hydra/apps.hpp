// Control-plane applications that close the loop on Hydra reports — the
// paper's "the control plane could add firewall rules ... in response to a
// single report" (§2), packaged as reusable agents.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/network.hpp"

namespace hydra::apps {

// Consumes stateful-firewall reports (payload: dst, src of the missing
// reverse entry) and installs the reverse-direction `allowed` rule on
// every edge switch, following the standard consistent-update practice the
// paper cites (install everywhere in response to a single report).
class FirewallAgent {
 public:
  // `deployment` must be a deployment of the stateful_firewall checker.
  FirewallAgent(net::Network& net, int deployment);

  std::uint64_t rules_installed() const { return installed_; }
  std::uint64_t duplicate_reports() const { return duplicates_; }

 private:
  void on_report(const net::ReportRecord& r);

  net::Network& net_;
  int deployment_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, bool> known_;
  std::uint64_t installed_ = 0;
  std::uint64_t duplicates_ = 0;
};

// Counts reports per (checker, switch) — a minimal telemetry collector for
// dashboards and the load-balance monitoring example.
class ReportCounter {
 public:
  explicit ReportCounter(net::Network& net);

  std::uint64_t total() const { return total_; }
  std::uint64_t at_switch(int switch_id) const;
  std::uint64_t for_checker(const std::string& name) const;

 private:
  std::map<int, std::uint64_t> by_switch_;
  std::map<std::string, std::uint64_t> by_checker_;
  std::uint64_t total_ = 0;
};

}  // namespace hydra::apps
