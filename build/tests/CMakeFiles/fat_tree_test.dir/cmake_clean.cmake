file(REMOVE_RECURSE
  "CMakeFiles/fat_tree_test.dir/fat_tree_test.cpp.o"
  "CMakeFiles/fat_tree_test.dir/fat_tree_test.cpp.o.d"
  "fat_tree_test"
  "fat_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fat_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
