// Violation forensics flight recorder.
//
// The trace facility (obs/trace.hpp) answers "what happened to the packet I
// chose to watch"; this module answers the inverse question the paper's
// §5.2 diagnosis actually needs: "a checker just rejected or reported a
// packet nobody was watching — why?". It is split the same way production
// dataplane telemetry systems are:
//
//   * always-on CHEAP recording — a capacity-bounded, allocation-free
//     per-switch ring buffer of compact HopRecords. Every per-hop checker
//     execution writes one fixed-size record (flow identity, matched table
//     entry indices, register read/write deltas, decoded telemetry values
//     after the hop's blocks ran). Once the rings are built no recording
//     path allocates: records hold small inline arrays, and a full ring
//     overwrites its oldest slot.
//   * on-demand DEEP reconstruction — when a checker rejects or reports,
//     net::Network joins the rings on the packet id and assembles a
//     ViolationReport: the full path with per-hop telemetry evolution,
//     provenance, and the forwarding verdicts that produced the outcome.
//
// Like obs/trace.hpp this header is a pure data model: it knows nothing of
// packets, IR, or the simulator. Numeric ids (table/register/field indices)
// are resolved to names by the layer that owns the checker IR.
//
// THREADING (parallel engine): a ring belongs to one switch, a switch is
// statically sharded to one worker, and per-switch window items retain
// their (time, seq) order inside a shard — so each ring is single-writer
// and its contents are bit-identical across engines and worker counts.
// Reports are assembled at commit time (canonical order), so the exported
// forensics JSON is byte-identical too, provided a ring's capacity exceeds
// the records appended to it within one epoch window (see DESIGN.md §10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hydra::obs {

// One checker's execution at one hop, fixed-size so ring slots never
// allocate. Overflowing an inline array drops the extra items and sets the
// matching `truncated` bit — forensics degrades, it never costs the hot
// path an allocation.
struct HopRecord {
  static constexpr int kMaxTableHits = 8;
  static constexpr int kMaxRegTouches = 8;
  static constexpr int kMaxTele = 16;
  // `truncated` bits:
  static constexpr std::uint8_t kTruncTableHits = 1;
  static constexpr std::uint8_t kTruncRegTouches = 2;
  static constexpr std::uint8_t kTruncTele = 4;

  struct TableHit {
    std::int16_t table = -1;  // checker IR table index
    std::int32_t entry = -1;  // matched entry index, -1 = miss or default
    bool hit = false;
  };
  struct RegTouch {
    std::int16_t reg = -1;  // checker IR register index
    bool wrote = false;
    std::uint64_t before = 0;
    std::uint64_t after = 0;
  };
  struct TeleVal {
    std::int16_t field = -1;  // checker IR field id (kTele space)
    std::uint64_t value = 0;  // after the hop's blocks ran
  };

  std::uint64_t packet_id = 0;
  int hop = 0;  // 1-based position in the packet's journey
  int switch_id = -1;
  int deployment = -1;
  double time = 0.0;
  int in_port = -1;
  int eg_port = -1;
  bool first_hop = false;
  bool last_hop = false;
  bool fwd_drop = false;
  bool reject = false;
  bool ran_init = false;
  bool ran_tele = false;
  bool ran_check = false;
  std::uint8_t report_count = 0;  // reports raised by this checker this hop
  // Forwarding drop provenance: a static string literal supplied by the
  // forwarding program (net::ForwardingProgram::Decision::reason), or null.
  const char* fwd_reason = nullptr;
  // Fault-injection annotation: a static string literal naming why this
  // hop's checker execution was affected by an injected fault (e.g.
  // "tele_bad_tag" for a fail-closed decode reject, "cold_suppressed"
  // after a switch restart), or null when no fault touched this hop.
  const char* fault_note = nullptr;

  std::uint8_t truncated = 0;
  std::uint8_t n_table_hits = 0;
  std::uint8_t n_reg_touches = 0;
  std::uint8_t n_tele = 0;
  TableHit table_hits[kMaxTableHits];
  RegTouch reg_touches[kMaxRegTouches];
  TeleVal tele[kMaxTele];

  void reset();
  void add_table_hit(std::int16_t table, std::int32_t entry, bool hit);
  void add_reg_touch(std::int16_t reg, bool wrote, std::uint64_t before,
                     std::uint64_t after);
  void add_tele(std::int16_t field, std::uint64_t value);
};

// Counts the allocation charges the forensics subsystem performs (one per
// ring at recorder construction, one per assembled ViolationReport). The
// zero-overhead-when-disabled tests assert this stays flat across a run
// with forensics off.
std::uint64_t forensics_allocations();

namespace detail {
// Called by the assembly layer (net::Network) when it materializes a
// ViolationReport, so the allocation audit covers reconstruction too.
void note_forensics_allocation(std::uint64_t n = 1);
}  // namespace detail

class FlightRecorder {
 public:
  // One ring per switch id in [0, switches), each `capacity` slots,
  // fully allocated up front.
  FlightRecorder(int switches, std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  // Total records ever appended across all rings (sums per-ring totals; call
  // only from the committing thread, i.e. not mid-epoch).
  std::uint64_t recorded() const;

  // Next slot of switch `sw`'s ring (overwriting the oldest when full),
  // reset and ready to fill. Never allocates.
  HopRecord& append(int sw);

  // Every retained record for `packet_id`, in unspecified ring order —
  // callers sort by (hop, deployment). Pointers are valid until the next
  // append to the owning ring.
  void collect(std::uint64_t packet_id,
               std::vector<const HopRecord*>& out) const;

  void clear();  // empties every ring, keeps the storage

 private:
  struct Ring {
    std::vector<HopRecord> slots;
    std::size_t next = 0;   // slot the next append overwrites
    std::size_t count = 0;  // valid slots, <= capacity
    std::uint64_t total = 0;
  };
  std::vector<Ring> rings_;
  std::size_t capacity_ = 0;
};

// ---- assembled forensics (string-resolved, built on demand) ---------------

struct ViolationHopChecker {
  std::string checker;
  bool ran_init = false;
  bool ran_tele = false;
  bool ran_check = false;
  bool reject = false;
  int report_count = 0;
  bool provenance_truncated = false;
  std::string fault_note;  // empty when no fault touched this hop
  struct TableHit {
    std::string table;
    std::int32_t entry = -1;
    bool hit = false;
  };
  struct RegTouch {
    std::string reg;
    bool wrote = false;
    std::uint64_t before = 0;
    std::uint64_t after = 0;
  };
  struct TeleVal {
    std::string name;
    std::uint64_t value = 0;
  };
  std::vector<TableHit> table_hits;
  std::vector<RegTouch> reg_touches;
  std::vector<TeleVal> tele;  // telemetry values leaving the hop
};

struct ViolationHop {
  int hop = 0;
  int switch_id = -1;
  std::string switch_name;
  double time = 0.0;
  int in_port = -1;
  int eg_port = -1;
  bool first_hop = false;
  bool last_hop = false;
  bool fwd_drop = false;
  std::string fwd_reason;  // empty when forwarding gave none
  std::vector<ViolationHopChecker> checkers;
};

struct ViolationReport {
  std::uint64_t packet_id = 0;
  std::string flow;
  std::string kind;  // "reject" or "report"
  // Why the verdict landed: "checker_reject" / "checker_report" for
  // genuine checker verdicts, or a fail-closed decode reason such as
  // "tele_bad_tag" / "tele_size_mismatch" when the telemetry frame was
  // damaged in flight and rejected without running the checker.
  std::string reason;
  std::vector<std::string> checkers;  // checkers that rejected/reported
  int switch_id = -1;                 // where the verdict landed
  std::string switch_name;
  double time = 0.0;
  int hop_count = 0;
  std::vector<std::vector<std::uint64_t>> report_payloads;
  // True when the rings had already evicted the packet's earliest hops;
  // `hops` then starts mid-journey.
  bool truncated = false;
  std::vector<ViolationHop> hops;
};

// Deterministic JSON: one object per report, stable key order, sim times
// only (no wall clock), so exports are byte-identical across engines.
std::string violation_json(const ViolationReport& report);
std::string violations_json(const std::vector<ViolationReport>& reports);

// §5.2-style human-readable story of one violation.
std::string violation_narrative(const ViolationReport& report);

}  // namespace hydra::obs
