#include "net/engine.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <stdexcept>
#include <string>

namespace hydra::net {

namespace {

constexpr SimTime kInfTime = std::numeric_limits<SimTime>::infinity();

// Spin this many acquire-loads before parking on the futex-backed
// std::atomic wait. Epochs on a loaded fabric are tens of microseconds
// apart, so workers usually catch the next publish without a syscall.
constexpr int kSpinIterations = 4096;

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Stable flow hash for flow-affinity sharding: FNV-1a over the packet's
// (inner) 5-tuple, falling back to the switch id for unparseable packets.
// Purely a locality/balance heuristic — in flow mode ANY assignment is
// correct (compute is read-only on shared state) — but it must be
// deterministic so profiling numbers are reproducible.
std::uint64_t flow_shard_hash(const SwitchWork& work,
                              const p4rt::Packet& pkt) {
  const p4rt::FlowId f = p4rt::flow_of(pkt);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  if (f.parsed) {
    h = fnv_mix(h, f.src_ip);
    h = fnv_mix(h, f.dst_ip);
    h = fnv_mix(h, f.src_port);
    h = fnv_mix(h, f.dst_port);
    h = fnv_mix(h, f.proto);
  } else {
    h = fnv_mix(h, static_cast<std::uint64_t>(work.sw));
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// ExecutionEngine
// ---------------------------------------------------------------------------

void ExecutionEngine::exec_inline(EventQueue::Item& item) {
  switch (item.kind) {
    case EventKind::kClosure:
      item.fn();
      break;
    case EventKind::kTick:
      item.tick->tick(item.t);
      break;
    case EventKind::kPacketSend:
      net_->deliver_packet(item.work);
      break;
    case EventKind::kSwitchWork:
      net_->process_hop_serial(item.t, std::move(item.work));
      break;
  }
}

void ExecutionEngine::drain_spawned_before(EventQueue& q, SimTime t) {
  // Items spawned while draining carry larger seqs than every window item,
  // so a strict time comparison reproduces full (t, seq) order. Switch
  // work landing here is unreachable while the lookahead invariant holds;
  // exec_inline runs it serially, keeping even a violated invariant
  // deterministic.
  while (!q.empty() && q.next_time() < t) {
    EventQueue::Item item = q.pop_next();
    q.advance_now(item.t);
    exec_inline(item);
  }
}

// ---------------------------------------------------------------------------
// SerialEngine
// ---------------------------------------------------------------------------

void SerialEngine::drain(EventQueue& q, SimTime limit) {
  // Null unless profiling / streaming export is armed; one branch per
  // event otherwise.
  obs::EngineProfiler* prof = net_->engine_profiler_ptr();
  obs::ExportScheduler* sched = net_->export_scheduler_ptr();
  while (q.has_ready(limit)) {
    EventQueue::Item item = q.pop_next();
    // Export ticks fire on the event timeline: every tick T <= item.t is
    // captured after all events with t < T committed and before this event
    // runs. The parallel engine reproduces the same boundary (it never
    // lets a window cross a pending tick), so the sample sequence is
    // engine-invariant.
    if (sched != nullptr && item.t >= sched->next_tick()) {
      net_->export_tick_until(item.t);
    }
    q.advance_now(item.t);
    if (item.is_switch_work()) {
      if (prof != nullptr) {
        const double t0 = prof->now_us();
        net_->process_hop_serial(item.t, std::move(item.work));
        prof->serial_hop(t0, prof->now_us());
      } else {
        net_->process_hop_serial(item.t, std::move(item.work));
      }
    } else {
      exec_inline(item);
    }
  }
}

// ---------------------------------------------------------------------------
// ParallelEngine
// ---------------------------------------------------------------------------

ParallelEngine::ParallelEngine(Network& net, int workers)
    : ExecutionEngine(net), workers_(workers) {
  if (workers_ < 1) {
    throw std::invalid_argument("parallel engine needs >= 1 worker");
  }
  errors_.assign(static_cast<std::size_t>(workers_), nullptr);
  slice_begin_.assign(static_cast<std::size_t>(workers_) + 1, 0);
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (auto& t : threads_) t.join();
}

void ParallelEngine::worker_main(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int spin = 0; e == seen && spin < kSpinIterations; ++spin) {
      e = epoch_.load(std::memory_order_acquire);
    }
    while (e == seen) {
      epoch_.wait(seen, std::memory_order_acquire);
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (stop_.load(std::memory_order_relaxed)) return;
    compute_slice(worker);
    if (remaining_.fetch_sub(1, std::memory_order_release) == 1) {
      remaining_.notify_one();
    }
  }
}

void ParallelEngine::compute_slice(int worker) {
  try {
    const double t0 = prof_ != nullptr ? prof_->now_us() : 0.0;
    ExecContext& ctx = net_->context(worker);
    const std::uint32_t begin = slice_begin_[static_cast<std::size_t>(worker)];
    const std::uint32_t end =
        slice_begin_[static_cast<std::size_t>(worker) + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t i = slice_items_[k];
      EventQueue::Item& item = window_[i];
      net_->compute_hop(ctx, item.t, item.work, results_[i]);
    }
    if (prof_ != nullptr) {
      prof_->compute(worker, t0, prof_->now_us(), end - begin);
    }
  } catch (...) {
    errors_[static_cast<std::size_t>(worker)] = std::current_exception();
  }
}

void ParallelEngine::plan_switch_groups() {
  const auto nodes = static_cast<std::size_t>(net_->topo().node_count());
  if (sw_count_.size() < nodes) {
    sw_count_.resize(nodes, 0);
    sw_shard_.resize(nodes, 0);
  }
  item_shard_.assign(window_.size(), kNoShard);
  sw_touched_.clear();
  for (const auto& item : window_) {
    if (!item.is_switch_work()) continue;
    if (sw_count_[static_cast<std::size_t>(item.work.sw)]++ == 0) {
      sw_touched_.push_back(item.work.sw);
    }
  }
  // Greedy LPT bin-packing: heaviest switch first onto the least-loaded
  // worker. Ties break by id (switches) and index (workers), keeping the
  // plan — and thus profiling output — deterministic.
  std::sort(sw_touched_.begin(), sw_touched_.end(), [this](int a, int b) {
    const std::uint32_t ca = sw_count_[static_cast<std::size_t>(a)];
    const std::uint32_t cb = sw_count_[static_cast<std::size_t>(b)];
    return ca != cb ? ca > cb : a < b;
  });
  shard_load_.assign(static_cast<std::size_t>(workers_), 0);
  for (const int sw : sw_touched_) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shard_load_.size(); ++s) {
      if (shard_load_[s] < shard_load_[best]) best = s;
    }
    sw_shard_[static_cast<std::size_t>(sw)] = static_cast<int>(best);
    shard_load_[best] += sw_count_[static_cast<std::size_t>(sw)];
    sw_count_[static_cast<std::size_t>(sw)] = 0;  // zeroed for next window
  }
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const auto& item = window_[i];
    if (!item.is_switch_work()) continue;
    item_shard_[i] = static_cast<std::uint32_t>(
        sw_shard_[static_cast<std::size_t>(item.work.sw)]);
  }
}

void ParallelEngine::plan_flow_affinity() {
  item_shard_.assign(window_.size(), kNoShard);
  const auto w = static_cast<std::uint64_t>(workers_);
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const auto& item = window_[i];
    if (!item.is_switch_work()) continue;
    item_shard_[i] = static_cast<std::uint32_t>(
        flow_shard_hash(item.work, net_->packet(item.work.pkt)) % w);
  }
}

void ParallelEngine::bucket_slices() {
  // Counting sort of window indices by shard: stable, so each slice keeps
  // (t, seq) order; one allocation-free pass in steady state.
  std::fill(slice_begin_.begin(), slice_begin_.end(), 0u);
  for (const std::uint32_t s : item_shard_) {
    if (s != kNoShard) ++slice_begin_[s + 1];
  }
  for (std::size_t s = 1; s < slice_begin_.size(); ++s) {
    slice_begin_[s] += slice_begin_[s - 1];
  }
  slice_fill_.assign(slice_begin_.begin(), slice_begin_.end() - 1);
  slice_items_.resize(slice_begin_.back());
  for (std::size_t i = 0; i < item_shard_.size(); ++i) {
    const std::uint32_t s = item_shard_[i];
    if (s == kNoShard) continue;
    slice_items_[slice_fill_[s]++] = static_cast<std::uint32_t>(i);
  }
}

void ParallelEngine::set_flow_tables(bool on) {
  if (shared_tables_on_ == on) return;
  net_->set_concurrent_tables(on);
  shared_tables_on_ = on;
}

void ParallelEngine::run_window_serial(EventQueue& q) {
  std::size_t pend = q.pending();
  SimTime head = pend > 0 ? q.next_time() : kInfTime;
  for (auto& item : window_) {
    if (head < item.t) {
      drain_spawned_before(q, item.t);
      pend = q.pending();
      head = pend > 0 ? q.next_time() : kInfTime;
    }
    q.advance_now(item.t);
    if (item.is_switch_work()) {
      net_->process_hop_serial(item.t, std::move(item.work));
    } else {
      exec_inline(item);
    }
    const std::size_t p = q.pending();
    if (p != pend) {  // events only get added here; a change moves the head
      pend = p;
      head = p > 0 ? q.next_time() : kInfTime;
    }
  }
}

void ParallelEngine::commit_window(EventQueue& q) {
  // Batched merge check: executing an item only ever ADDS events (pops
  // happen inside drain_spawned_before, after which we refresh), so as
  // long as pending() is unchanged the cached head is exact and the
  // per-item "anything spawned before me?" probe reduces to one compare.
  // drain_spawned_before uses strict <, so head == item.t skips exactly.
  std::size_t pend = q.pending();
  SimTime head = pend > 0 ? q.next_time() : kInfTime;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    EventQueue::Item& item = window_[i];
    if (head < item.t) {
      drain_spawned_before(q, item.t);
      pend = q.pending();
      head = pend > 0 ? q.next_time() : kInfTime;
    }
    q.advance_now(item.t);
    if (item.is_switch_work()) {
      net_->commit_hop(item.t, std::move(item.work), std::move(results_[i]));
    } else {
      exec_inline(item);
    }
    const std::size_t p = q.pending();
    if (p != pend) {
      pend = p;
      head = p > 0 ? q.next_time() : kInfTime;
    }
  }
}

void ParallelEngine::run_window(EventQueue& q) {
  const double e0 = prof_ != nullptr ? prof_->now_us() : 0.0;
  std::size_t switch_items = 0;
  bool has_control = false;
  for (const auto& item : window_) {
    if (!item.is_switch_work()) continue;
    ++switch_items;
    if (item.work.ctl != kNullHandle) has_control = true;
  }
  const std::size_t mult_used = mult_;

  // Mode selection. Closed control loop subscribed: a commit may mutate
  // state that later same-window compute reads, so fall back to serial
  // per-event execution (see the degradation rule in the header). Flow
  // mode needs the network's standing guarantees plus a control-free
  // window; otherwise switch-group sharding keeps one switch on one
  // worker.
  const char* mode = "parallel";
  if (net_->has_report_callbacks() || net_->has_control_loop()) {
    mode = "callbacks";
  } else if (workers_ == 1) {
    mode = "one_worker";
  } else if (switch_items < kDispatchThreshold) {
    mode = "small_window";
  } else if (!has_control && net_->flow_sharding_allowed()) {
    mode = "flow";
  }
  const bool serial_window = mode[0] != 'p' && mode[0] != 'f';

  if (serial_window) {
    set_flow_tables(false);
    run_window_serial(q);
    if (prof_ != nullptr) {
      prof_->epoch(e0, prof_->now_us(), window_.size(), switch_items, mode,
                   mult_used);
    }
  } else {
    // PLAN: per-worker contiguous slices, built once at pop time.
    if (mode[0] == 'f') {
      plan_flow_affinity();
    } else {
      plan_switch_groups();
    }
    bucket_slices();
    set_flow_tables(mode[0] == 'f');

    // COMPUTE: publish the window, wake the pool, take slice 0 ourselves.
    results_.resize(window_.size());
    std::fill(errors_.begin(), errors_.end(), nullptr);
    remaining_.store(workers_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    compute_slice(0);
    const double b0 = prof_ != nullptr ? prof_->now_us() : 0.0;
    int r = remaining_.load(std::memory_order_acquire);
    for (int spin = 0; r != 0 && spin < kSpinIterations; ++spin) {
      r = remaining_.load(std::memory_order_acquire);
    }
    while (r != 0) {
      remaining_.wait(r, std::memory_order_acquire);
      r = remaining_.load(std::memory_order_acquire);
    }
    if (prof_ != nullptr) prof_->barrier(b0, prof_->now_us());
    for (const auto& err : errors_) {
      if (err) std::rethrow_exception(err);
    }

    // COMMIT: canonical (t, seq) order, merging in spawned closures.
    const double c0 = prof_ != nullptr ? prof_->now_us() : 0.0;
    commit_window(q);
    if (prof_ != nullptr) {
      const double c1 = prof_->now_us();
      prof_->commit(c0, c1);
      prof_->epoch(e0, c1, window_.size(), switch_items, mode, mult_used);
    }
  }

  // Adapt the lookahead multiplier for the next window: grow while
  // windows are too lean to feed the pool, shrink when they balloon.
  const std::size_t target =
      static_cast<std::size_t>(workers_) * kTargetItemsPerWorker;
  if (switch_items < target) {
    if (mult_ < kMaxLookaheadMult) mult_ <<= 1;
  } else if (switch_items > 4 * target && mult_ > 1) {
    mult_ >>= 1;
  }
}

void ParallelEngine::drain(EventQueue& q, SimTime limit) {
  // Refreshed while the pool is idle; the epoch handshake publishes them.
  prof_ = net_->engine_profiler_ptr();
  sched_ = net_->export_scheduler_ptr();
  lookahead_ = net_->lookahead();
  min_spawn_delay_ = net_->min_spawn_delay();
  // Delayed rule pushes (faults armed) may schedule control work closer
  // than one lookahead ahead of "now", so extended windows are only sound
  // on fault-free runs. arm/disarm require an idle queue, so this cannot
  // change mid-drain.
  extension_allowed_ = !net_->faults_armed();
  while (q.has_ready(limit)) {
    const SimTime t0 = q.next_time();
    // Fire every export tick due at or before the queue head: all earlier
    // events have committed and the pool is quiesced between windows, so
    // the captured totals equal the serial engine's at the same boundary.
    if (sched_ != nullptr && t0 >= sched_->next_tick()) {
      net_->export_tick_until(t0);
    }
    SimTime window_end = t0 + lookahead_;
    if (extension_allowed_ && mult_ > 1) {
      // Sound extension bound (see the header): a pending closure at c
      // spawns switch work no earlier than c + L; a pending switch commit
      // at s must cross a link (+D at minimum) before the next hop's +L.
      const SimTime bound =
          std::min(q.next_closure_time() + lookahead_,
                   q.next_switch_time() + min_spawn_delay_ + lookahead_);
      window_end =
          std::min(t0 + lookahead_ * static_cast<SimTime>(mult_), bound);
      if (window_end < t0 + lookahead_) window_end = t0 + lookahead_;
    }
    // Never let a window cross a pending export tick: events at or past
    // the tick must not compute (let alone commit) before the sample is
    // captured. export_tick_until above guarantees next_tick() > t0, and
    // pop_window always takes the whole t0 group, so progress holds even
    // when the clamp shrinks the window below one lookahead.
    if (sched_ != nullptr && window_end > sched_->next_tick()) {
      window_end = sched_->next_tick();
    }
    window_.clear();
    const double p0 = prof_ != nullptr ? prof_->now_us() : 0.0;
    q.pop_window(limit, window_end, window_);
    if (prof_ != nullptr) {
      prof_->pop_window(p0, prof_->now_us(), window_.size());
    }
    run_window(q);
  }
  set_flow_tables(false);
  net_->absorb_shard_metrics();
}

// ---------------------------------------------------------------------------
// Engine spec parsing
// ---------------------------------------------------------------------------

EngineKind parse_engine_kind(const std::string& spec, int* workers_out) {
  if (spec == "serial") {
    if (workers_out != nullptr) *workers_out = 0;
    return EngineKind::kSerial;
  }
  if (spec == "parallel") {
    if (workers_out != nullptr) *workers_out = 0;
    return EngineKind::kParallel;
  }
  const std::string prefix = "parallel:";
  if (spec.rfind(prefix, 0) == 0) {
    const std::string arg = spec.substr(prefix.size());
    const bool digits =
        !arg.empty() && arg.size() <= 4 &&
        std::all_of(arg.begin(), arg.end(),
                    [](unsigned char c) { return std::isdigit(c) != 0; });
    const int n = digits ? std::stoi(arg) : 0;
    if (!digits || n < 1 || n > 1024) {
      throw std::invalid_argument(
          "bad worker count '" + arg + "' in engine spec '" + spec +
          "': expected parallel:N with N an integer in [1, 1024]");
    }
    if (workers_out != nullptr) *workers_out = n;
    return EngineKind::kParallel;
  }
  throw std::invalid_argument("unknown engine spec '" + spec +
                              "' (serial | parallel[:N])");
}

const char* engine_kind_name(EngineKind kind) {
  return kind == EngineKind::kSerial ? "serial" : "parallel";
}

}  // namespace hydra::net
