// Check relocation analysis (§4.3). The paper's compiler checks only at
// the last hop and leaves "automatically relocating checks from the edge
// into the network core" as future work — this pass implements it.
//
// Running the checker block at EVERY hop is sound iff an intermediate hop
// can never reject a packet that the last-hop check would have accepted.
// The analysis proves this for the common shape of Indus checkers:
//
//   * the check block consists only of `if (cond) { reject/report }`
//     statements (no assignments, table lookups, or register ops — those
//     read per-switch state that legitimately differs across hops);
//   * every tele field read by a condition is either
//       - STABLE: written only by the init block, so its value is the same
//         at every hop, or
//       - a TRUE-LATCH: the telemetry block only ever assigns it the
//         constant true, so once set it stays set;
//   * true-latches appear only in POSITIVE positions (under an even number
//     of negations, combined with && / ||), so the condition is monotone:
//     if it holds at hop k it still holds at the last hop.
//
// Report payloads may read anything (they don't affect forwarding).
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace hydra::compiler {

struct RelocationAnalysis {
  bool relocatable = false;
  // Human-readable explanation of the verdict (which field/instruction
  // blocked relocation, or why it is sound).
  std::string reason;
};

RelocationAnalysis analyze_relocation(const ir::CheckerIR& ir);

}  // namespace hydra::compiler
