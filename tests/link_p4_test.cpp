// Tests for the automatic §4.2 linker: block placement per switch role,
// ordering within the pipeline, and placement-mode interaction.
#include <gtest/gtest.h>

#include "checkers/library.hpp"
#include "compiler/link_p4.hpp"

namespace hydra::compiler {
namespace {

CompiledChecker compile(const std::string& name,
                        CheckPlacement placement = CheckPlacement::kLastHop) {
  CompileOptions opts;
  opts.placement = placement;
  return compile_checker(checkers::checker_by_name(name).source,
                         std::string(name), opts);
}

std::size_t pos_of(const std::string& hay, const std::string& needle) {
  const auto p = hay.find(needle);
  EXPECT_NE(p, std::string::npos) << "missing: " << needle;
  return p;
}

TEST(LinkP4, EdgeRunsAllThreeBlocks) {
  const auto c = compile("multi_tenancy");
  const auto linked =
      link_p4(c, ForwardingSkeleton::fabric_upf(), SwitchRole::kEdge);
  EXPECT_TRUE(linked.runs_init);
  EXPECT_TRUE(linked.runs_checker);
  EXPECT_NE(linked.p4_code.find("HydraInit.apply"), std::string::npos);
  EXPECT_NE(linked.p4_code.find("HydraTelemetry.apply"), std::string::npos);
  EXPECT_NE(linked.p4_code.find("HydraChecker.apply"), std::string::npos);
}

TEST(LinkP4, CoreRunsTelemetryOnly) {
  const auto c = compile("multi_tenancy");
  const auto linked =
      link_p4(c, ForwardingSkeleton::fabric_upf(), SwitchRole::kCore);
  EXPECT_FALSE(linked.runs_init);
  EXPECT_FALSE(linked.runs_checker);
  EXPECT_EQ(linked.p4_code.find("HydraInit.apply"), std::string::npos);
  EXPECT_NE(linked.p4_code.find("HydraTelemetry.apply"), std::string::npos);
  EXPECT_EQ(linked.p4_code.find("HydraChecker.apply"), std::string::npos);
}

TEST(LinkP4, InitPrecedesForwardingIngress) {
  const auto c = compile("multi_tenancy");
  const auto linked =
      link_p4(c, ForwardingSkeleton::fabric_upf(), SwitchRole::kEdge);
  // The init block must run before forwarding can rewrite headers (e.g.
  // before GTP decap in the UPF ingress).
  EXPECT_LT(pos_of(linked.p4_code, "HydraInit.apply"),
            pos_of(linked.p4_code, "bridging.apply()"));
}

TEST(LinkP4, TelemetryAfterForwardingEgressCheckerLast) {
  const auto c = compile("loops");
  const auto linked =
      link_p4(c, ForwardingSkeleton::fabric_upf(), SwitchRole::kEdge);
  const auto egress_fwd = pos_of(linked.p4_code, "vlan_rewrite.apply()");
  const auto tele = pos_of(linked.p4_code, "HydraTelemetry.apply");
  const auto check = pos_of(linked.p4_code, "HydraChecker.apply");
  EXPECT_LT(egress_fwd, tele);
  EXPECT_LT(tele, check);
}

TEST(LinkP4, EveryHopPlacementLinksCheckerIntoCore) {
  const auto c = compile("valley_free", CheckPlacement::kEveryHop);
  const auto linked =
      link_p4(c, ForwardingSkeleton::fabric_upf(), SwitchRole::kCore);
  EXPECT_TRUE(linked.runs_checker);
  EXPECT_NE(linked.p4_code.find("HydraChecker.apply"), std::string::npos);
  // Per-hop checkers are unconditional, not gated on last_hop.
  EXPECT_NE(linked.p4_code.find("per-hop placement"), std::string::npos);
}

TEST(LinkP4, LastHopCheckerIsGated) {
  const auto c = compile("valley_free");
  const auto linked =
      link_p4(c, ForwardingSkeleton::fabric_upf(), SwitchRole::kEdge);
  EXPECT_NE(linked.p4_code.find("if (meta.hydra_last_hop)"),
            std::string::npos);
}

TEST(LinkP4, LinkedProgramIsBiggerThanItsParts) {
  const auto c = compile("application_filtering");
  const auto fwd = ForwardingSkeleton::fabric_upf();
  const auto linked = link_p4(c, fwd, SwitchRole::kEdge);
  EXPECT_GT(linked.p4_loc, c.p4_loc);
  EXPECT_NE(linked.p4_code.find("sessions_uplink"), std::string::npos);
  EXPECT_NE(linked.p4_code.find("filtering_actions"), std::string::npos);
}

TEST(LinkP4, SimpleRouterSkeletonLinksToo) {
  const auto c = compile("valley_free");
  const auto linked =
      link_p4(c, ForwardingSkeleton::simple_router(), SwitchRole::kEdge);
  EXPECT_NE(linked.p4_code.find("routing_v4.apply()"), std::string::npos);
  EXPECT_NE(linked.p4_code.find("HydraChecker.apply"), std::string::npos);
}

// Every library checker links against both skeletons in both roles.
class LinkAll : public ::testing::TestWithParam<int> {};

TEST_P(LinkAll, LinksCleanly) {
  const auto& spec =
      checkers::all_checkers()[static_cast<std::size_t>(GetParam())];
  const auto c = compile_checker(spec.source, spec.name);
  for (const auto& skel : {ForwardingSkeleton::fabric_upf(),
                           ForwardingSkeleton::simple_router()}) {
    for (auto role : {SwitchRole::kEdge, SwitchRole::kCore}) {
      const auto linked = link_p4(c, skel, role);
      EXPECT_GT(linked.p4_loc, 0);
      EXPECT_NE(linked.p4_code.find("control Ingress"), std::string::npos);
      EXPECT_NE(linked.p4_code.find("control Egress"), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Library, LinkAll,
                         ::testing::Range(0, static_cast<int>(
                             checkers::all_checkers().size())),
                         [](const auto& info) {
                           return checkers::all_checkers()
                               [static_cast<std::size_t>(info.param)].name;
                         });

}  // namespace
}  // namespace hydra::compiler
