file(REMOVE_RECURSE
  "CMakeFiles/ltlf_test.dir/ltlf_test.cpp.o"
  "CMakeFiles/ltlf_test.dir/ltlf_test.cpp.o.d"
  "ltlf_test"
  "ltlf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
