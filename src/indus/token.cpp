#include "indus/token.hpp"

namespace hydra::indus {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kString: return "string";
    case Tok::kTele: return "'tele'";
    case Tok::kSensor: return "'sensor'";
    case Tok::kHeader: return "'header'";
    case Tok::kControl: return "'control'";
    case Tok::kBitKw: return "'bit'";
    case Tok::kBoolKw: return "'bool'";
    case Tok::kSetKw: return "'set'";
    case Tok::kDictKw: return "'dict'";
    case Tok::kIf: return "'if'";
    case Tok::kElsif: return "'elsif'";
    case Tok::kElse: return "'else'";
    case Tok::kFor: return "'for'";
    case Tok::kIn: return "'in'";
    case Tok::kReject: return "'reject'";
    case Tok::kReport: return "'report'";
    case Tok::kPass: return "'pass'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kLAngle: return "'<'";
    case Tok::kRAngle: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kDot: return "'.'";
    case Tok::kAt: return "'@'";
    case Tok::kEof: return "end of input";
  }
  return "?";
}

std::string Token::to_string() const {
  switch (kind) {
    case Tok::kIdent:
      return "ident(" + text + ")";
    case Tok::kNumber:
      return "num(" + std::to_string(number) + ")";
    case Tok::kString:
      return "str(\"" + text + "\")";
    default:
      return tok_name(kind);
  }
}

}  // namespace hydra::indus
