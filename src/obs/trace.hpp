// Packet trace facility — follows a sampled packet hop by hop.
//
// This module is the pure data model plus the sink that stores and exports
// traces; the *instrumentation* (deciding which packets to sample and
// filling in hops) lives in net::Network, which is the only layer that
// sees packets, checkers, and the clock together. Keeping the model free
// of packet/IR types lets tools and tests consume traces without linking
// the simulator.
//
// One trace records, per hop: the switch, the time, ports, the forwarding
// decision, each deployed checker's telemetry values before and after its
// blocks ran, and the checker verdict (reject + report payloads). That is
// exactly the evidence chain needed to replay a §5.2-style diagnosis as a
// readable narrative — see TraceSink::narrative().
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace hydra::obs {

// One telemetry field's value entering and leaving a hop.
struct TraceFieldValue {
  std::string name;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
};

// What one deployed checker did at one hop.
struct CheckerHopRecord {
  std::string checker;
  bool ran_init = false;
  bool ran_tele = false;
  bool ran_check = false;
  bool reject = false;
  std::vector<std::vector<std::uint64_t>> reports;  // payload values
  std::vector<TraceFieldValue> tele;                // telemetry before/after
};

struct TraceHop {
  int hop = 0;  // 1-based position in the journey
  int switch_id = -1;
  std::string switch_name;
  double time = 0.0;
  int in_port = -1;
  int eg_port = -1;  // -1 on drop
  bool first_hop = false;
  bool last_hop = false;
  bool fwd_drop = false;
  bool rejected = false;  // any checker rejected here
  int wire_bytes = 0;
  std::string forwarding;  // forwarding program name, or "none"
  std::vector<CheckerHopRecord> checkers;
};

enum class PacketFate {
  kInFlight,      // still traversing (or vanished on an unconnected port)
  kDelivered,     // reached a host
  kFwdDropped,    // dropped by the forwarding program
  kRejected,      // dropped by a Hydra checker
  kQueueDropped,  // tail-dropped at a full link buffer
  kFaultDropped,  // dropped by the fault injector (loss or downed link)
};

const char* fate_name(PacketFate fate);

struct PacketTrace {
  std::uint64_t packet_id = 0;
  double created_at = 0.0;
  std::string flow;  // human-readable flow identity, e.g. "a:p -> b:q udp"
  PacketFate fate = PacketFate::kInFlight;
  double finished_at = 0.0;
  std::vector<TraceHop> hops;
};

// Stores completed and in-flight traces up to a capacity; once full, no new
// traces start (finished ones keep their data — this is a diagnostic tool,
// not a ring buffer, so early evidence is never overwritten).
class TraceSink {
 public:
  void set_capacity(std::size_t n) { capacity_ = n; }
  std::size_t capacity() const { return capacity_; }
  bool has_capacity() const { return traces_.size() < capacity_; }

  PacketTrace& begin(std::uint64_t packet_id, double created_at,
                     std::string flow);
  // The trace for a still-in-flight packet, or nullptr if it is not traced.
  PacketTrace* active(std::uint64_t packet_id);
  void finish(std::uint64_t packet_id, PacketFate fate, double time);

  const std::deque<PacketTrace>& traces() const { return traces_; }
  bool empty() const { return traces_.empty(); }
  // True while any traced packet is still in flight — the cheap guard the
  // per-hop instrumentation checks before the id lookup.
  bool tracing() const { return !active_.empty(); }
  void clear();

  std::string to_json() const;
  // A per-hop story of one trace, for terminal output.
  static std::string narrative(const PacketTrace& trace);

 private:
  std::size_t capacity_ = 64;
  std::deque<PacketTrace> traces_;  // deque: stable refs as traces start
  std::unordered_map<std::uint64_t, std::size_t> active_;
};

}  // namespace hydra::obs
