// End-to-end Aether case study (§5.2): slice policy model, the ONOS-like
// controller's shared-Applications-table behaviour, and the headline
// result — Hydra's application-filtering checker catching the Figure 11
// rule-update bug at runtime.
#include <gtest/gtest.h>

#include "aether/controller.hpp"
#include "aether/slice.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

namespace hydra::aether {
namespace {

// ---------------------------------------------------------------------------
// Slice policy model
// ---------------------------------------------------------------------------

TEST(Slice, RuleMatching) {
  FilteringRule r;
  r.app_prefix = 0x0a000200;
  r.prefix_len = 24;
  r.proto = p4rt::kProtoUdp;
  r.port_lo = 81;
  r.port_hi = 82;
  EXPECT_TRUE(r.matches(0x0a000205, p4rt::kProtoUdp, 81));
  EXPECT_TRUE(r.matches(0x0a0002ff, p4rt::kProtoUdp, 82));
  EXPECT_FALSE(r.matches(0x0a000305, p4rt::kProtoUdp, 81));  // wrong prefix
  EXPECT_FALSE(r.matches(0x0a000205, p4rt::kProtoTcp, 81));  // wrong proto
  EXPECT_FALSE(r.matches(0x0a000205, p4rt::kProtoUdp, 83));  // wrong port
}

TEST(Slice, DecideUsesHighestPriority) {
  const Slice s = example_camera_slice(1);
  EXPECT_EQ(s.decide(0x01020304, p4rt::kProtoUdp, 81), FilterAction::kAllow);
  EXPECT_EQ(s.decide(0x01020304, p4rt::kProtoUdp, 80), FilterAction::kDeny);
  EXPECT_EQ(s.decide(0x01020304, p4rt::kProtoTcp, 81), FilterAction::kDeny);
}

TEST(Slice, DefaultIsDeny) {
  Slice s;
  s.id = 1;
  EXPECT_EQ(s.decide(1, 2, 3), FilterAction::kDeny);
}

TEST(Slice, RuleToString) {
  const Slice s = example_camera_slice(1);
  EXPECT_EQ(s.rules[0].to_string(), "10:0.0.0.0/0:any:any:deny");
  EXPECT_EQ(s.rules[1].to_string(), "20:0.0.0.0/0:UDP:81:allow");
}

// ---------------------------------------------------------------------------
// Full testbed fixture
// ---------------------------------------------------------------------------

struct Testbed {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);
  std::shared_ptr<fwd::UpfProgram> upf =
      std::make_shared<fwd::UpfProgram>(routing);
  int dep;
  AetherController controller;

  static constexpr std::uint32_t kUe1 = 0x0a640001;
  static constexpr std::uint32_t kUe2 = 0x0a640002;
  std::uint32_t enb_ip;  // small cell = h1
  std::uint32_t n3_ip = 0x0a0001fe;
  std::uint32_t app_ip;  // edge app server = h3 (leaf2)

  Testbed()
      : dep(net.deploy(compile_library_checker("application_filtering"))),
        controller(net, upf, dep) {
    net.set_program(fabric.leaves[0], upf);
    enb_ip = net.topo().node(fabric.hosts[0][0]).ip;
    app_ip = net.topo().node(fabric.hosts[1][0]).ip;
    controller.define_slice(example_camera_slice(1));
  }

  // Uplink packet from the small cell (h1): inner UE -> app, GTP outer.
  void send_uplink(std::uint32_t ue_ip, std::uint32_t teid,
                   std::uint16_t dport) {
    p4rt::Packet inner = p4rt::make_udp(ue_ip, app_ip, 40000, dport, 64);
    net.send_from_host(fabric.hosts[0][0],
                       p4rt::gtpu_encap(inner, enb_ip, n3_ip, teid));
    net.events().run();
  }

  std::uint64_t delivered() const { return net.counters().delivered; }
  std::uint64_t upf_drops() const { return upf->termination_drops(); }
};

TEST(Aether, AttachedClientReachesAllowedApp) {
  Testbed tb;
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  tb.send_uplink(Testbed::kUe1, 1001, 81);
  EXPECT_EQ(tb.delivered(), 1u);
  EXPECT_TRUE(tb.net.reports().empty());
  EXPECT_EQ(tb.net.counters().rejected, 0u);
}

TEST(Aether, DeniedPortIsDroppedConsistently) {
  Testbed tb;
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  tb.send_uplink(Testbed::kUe1, 1001, 80);
  EXPECT_EQ(tb.delivered(), 0u);
  EXPECT_EQ(tb.upf_drops(), 1u);
  // Deny + dropped is consistent: no Hydra report.
  EXPECT_TRUE(tb.net.reports().empty());
}

TEST(Aether, ControllerSharesApplicationEntries) {
  Testbed tb;
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  const auto apps_after_first = tb.upf->application_entries();
  tb.controller.attach_client(1, {123450002, Testbed::kUe2, 1002}, tb.enb_ip,
                              tb.n3_ip);
  // Same rules: the second client reuses the shared entries.
  EXPECT_EQ(tb.upf->application_entries(), apps_after_first);
  EXPECT_EQ(tb.controller.app_ids_allocated(), 2u);
}

TEST(Aether, BothClientsWorkBeforeRuleUpdate) {
  Testbed tb;
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  tb.controller.attach_client(1, {123450002, Testbed::kUe2, 1002}, tb.enb_ip,
                              tb.n3_ip);
  tb.send_uplink(Testbed::kUe1, 1001, 81);
  tb.send_uplink(Testbed::kUe2, 1002, 81);
  EXPECT_EQ(tb.delivered(), 2u);
  EXPECT_TRUE(tb.net.reports().empty());
}

// The headline reproduction: the Figure 11 bug, caught by Hydra at runtime.
TEST(Aether, HydraCatchesRuleUpdateBug) {
  Testbed tb;
  // Client 1 attaches under the original rules and can use UDP 81.
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  tb.send_uplink(Testbed::kUe1, 1001, 81);
  ASSERT_EQ(tb.delivered(), 1u);

  // Operator expands the allow rule to UDP 81-82 with a higher priority.
  Slice updated = example_camera_slice(1);
  updated.rules[1].port_hi = 82;
  updated.rules[1].priority = 30;
  tb.controller.update_slice_rules(1, updated.rules);

  // Client 2 attaches; ONOS installs the new shared Applications entry.
  tb.controller.attach_client(1, {123450002, Testbed::kUe2, 1002}, tb.enb_ip,
                              tb.n3_ip);
  EXPECT_EQ(tb.controller.app_ids_allocated(), 3u);

  // Client 2 is fine under the new policy.
  tb.send_uplink(Testbed::kUe2, 1002, 81);
  EXPECT_EQ(tb.delivered(), 2u);

  // Client 1's port-81 traffic — still allowed by the operator's intent —
  // is now silently dropped by the UPF...
  const auto drops_before = tb.upf_drops();
  tb.send_uplink(Testbed::kUe1, 1001, 81);
  EXPECT_EQ(tb.delivered(), 2u);  // not delivered
  EXPECT_EQ(tb.upf_drops(), drops_before + 1);

  // ...and Hydra reports the inconsistency: filtering_action says allow
  // (2) but the data plane dropped the packet.
  ASSERT_FALSE(tb.net.reports().empty());
  const auto& report = tb.net.reports().back();
  EXPECT_EQ(report.checker, "application_filtering");
  EXPECT_EQ(report.switch_id, tb.fabric.leaves[0]);
  // Payload: (ue, proto, app_ip, port, action).
  ASSERT_EQ(report.values.size(), 5u);
  EXPECT_EQ(report.values[0].value(), Testbed::kUe1);
  EXPECT_EQ(report.values[1].value(), p4rt::kProtoUdp);
  EXPECT_EQ(report.values[2].value(), tb.app_ip);
  EXPECT_EQ(report.values[3].value(), 81u);
  EXPECT_EQ(report.values[4].value(), 2u);  // intended action: allow
}

TEST(Aether, NoFalseReportsForWellBehavedTraffic) {
  Testbed tb;
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  for (std::uint16_t port : {81, 81, 81}) {
    tb.send_uplink(Testbed::kUe1, 1001, port);
  }
  // Plain (non-UPF) traffic coexists without tripping the checker.
  tb.net.send_from_host(
      tb.fabric.hosts[0][1],
      p4rt::make_udp(tb.net.topo().node(tb.fabric.hosts[0][1]).ip, tb.app_ip,
                     5555, 443, 100));
  tb.net.events().run();
  EXPECT_EQ(tb.delivered(), 4u);
  EXPECT_TRUE(tb.net.reports().empty());
}

TEST(Aether, CheckerRejectsWronglyForwardedDeniedTraffic) {
  // The dual failure: a buggy data plane FORWARDS denied traffic. Model it
  // by installing an over-permissive termination directly (bypassing the
  // controller), and check Hydra rejects the packet at the last hop.
  Testbed tb;
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  // Buggy extra entries: TCP 443 gets its own app id and a forward action,
  // though the slice policy denies it.
  tb.upf->add_application(1, 40, 0, 0, p4rt::kProtoTcp, 443, 443, 77);
  tb.upf->add_termination(1, 77, true);
  p4rt::Packet inner =
      p4rt::make_tcp(Testbed::kUe1, tb.app_ip, 40000, 443, 64);
  tb.net.send_from_host(tb.fabric.hosts[0][0],
                        p4rt::gtpu_encap(inner, tb.enb_ip, tb.n3_ip, 1001));
  tb.net.events().run();
  // The UPF forwarded it, but Hydra rejected it at the network edge.
  EXPECT_EQ(tb.delivered(), 0u);
  EXPECT_EQ(tb.net.counters().rejected, 1u);
  ASSERT_FALSE(tb.net.reports().empty());
  EXPECT_EQ(tb.net.reports().back().values[4].value(), 1u);  // intended deny
}

// PFCP teardown in reverse of the sharing optimization: a detach removes
// the client's sessions/terminations/policy but a shared Applications
// entry survives until its LAST referencing client detaches.
TEST(Aether, DetachReleasesSharedEntriesByRefcount) {
  Testbed tb;
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  tb.controller.attach_client(1, {123450002, Testbed::kUe2, 1002}, tb.enb_ip,
                              tb.n3_ip);
  const auto shared_apps = tb.upf->application_entries();
  EXPECT_EQ(tb.controller.attached_count(), 2u);

  ASSERT_TRUE(tb.controller.detach_client(123450001));
  EXPECT_EQ(tb.controller.attached_count(), 1u);
  // Client 2 still references the shared entries; nothing was uninstalled.
  EXPECT_EQ(tb.upf->application_entries(), shared_apps);
  // Client 1's tunnel is gone: its uplink now session-misses.
  const auto misses = tb.upf->session_miss_drops();
  tb.send_uplink(Testbed::kUe1, 1001, 81);
  EXPECT_EQ(tb.upf->session_miss_drops(), misses + 1);
  EXPECT_EQ(tb.delivered(), 0u);
  // Client 2 is untouched.
  tb.send_uplink(Testbed::kUe2, 1002, 81);
  EXPECT_EQ(tb.delivered(), 1u);
  EXPECT_TRUE(tb.net.reports().empty());

  // Last reference gone: the shared entries are uninstalled too.
  ASSERT_TRUE(tb.controller.detach_client(123450002));
  EXPECT_EQ(tb.upf->application_entries(), 0u);
  EXPECT_EQ(tb.controller.attached_count(), 0u);
  // Idempotence + unknown imsi.
  EXPECT_FALSE(tb.controller.detach_client(123450002));
  EXPECT_FALSE(tb.controller.detach_client(999));

  // Re-attach reuses the imsi -> client-id binding and fresh entries work.
  const auto cid = tb.controller.client_id(123450001);
  tb.controller.attach_client(1, {123450001, Testbed::kUe1, 1001}, tb.enb_ip,
                              tb.n3_ip);
  EXPECT_EQ(tb.controller.client_id(123450001), cid);
  tb.send_uplink(Testbed::kUe1, 1001, 81);
  EXPECT_EQ(tb.delivered(), 2u);
  EXPECT_TRUE(tb.net.reports().empty());
}

TEST(Aether, UnknownSliceThrows) {
  Testbed tb;
  EXPECT_THROW(tb.controller.attach_client(9, {1, 2, 3}, 0, 0),
               std::out_of_range);
  EXPECT_THROW(tb.controller.define_slice(example_camera_slice(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hydra::aether
