
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event.cpp" "src/CMakeFiles/hydra_net.dir/net/event.cpp.o" "gcc" "src/CMakeFiles/hydra_net.dir/net/event.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/hydra_net.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/hydra_net.dir/net/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/hydra_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/hydra_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/hydra_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/hydra_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/switch_node.cpp" "src/CMakeFiles/hydra_net.dir/net/switch_node.cpp.o" "gcc" "src/CMakeFiles/hydra_net.dir/net/switch_node.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/hydra_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/hydra_net.dir/net/topology.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/CMakeFiles/hydra_net.dir/net/traffic.cpp.o" "gcc" "src/CMakeFiles/hydra_net.dir/net/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_p4rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_indus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
