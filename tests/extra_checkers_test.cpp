// End-to-end tests for the extra library checkers (beyond Table 1):
// hop-count limit, DSCP preservation, and header integrity — each with a
// deliberately faulty switch model the checker must catch.
#include <gtest/gtest.h>

#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

namespace hydra {
namespace {

struct Fixture {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);

  int h(int leaf, int i) const {
    return fabric.hosts[static_cast<std::size_t>(leaf)]
                       [static_cast<std::size_t>(i)];
  }
  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }
  void send(int from, int to, std::uint8_t dscp = 0) {
    p4rt::Packet p = p4rt::make_udp(ip(from), ip(to), 1000, 2000, 64);
    p.ipv4->dscp = dscp;
    net.send_from_host(from, std::move(p));
    net.events().run();
  }
};

// A switch wrapper that corrupts one IPv4 field at a chosen switch —
// modelling the bit-flip / buggy-rewrite hardware faults the paper argues
// only runtime checking can see.
class CorruptingSwitch : public net::ForwardingProgram {
 public:
  enum class Mode { kDscp, kSrcAddr };
  CorruptingSwitch(std::shared_ptr<net::ForwardingProgram> inner,
                   int at_switch, Mode mode)
      : inner_(std::move(inner)), at_switch_(at_switch), mode_(mode) {}
  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override {
    if (switch_id == at_switch_ && pkt.ipv4) {
      if (mode_ == Mode::kDscp) {
        pkt.ipv4->dscp ^= 0x04;  // single bit flip in the ToS byte
      } else {
        // Corrupt the SOURCE address: routing is unaffected, so the
        // packet still reaches its destination - carrying the fault.
        pkt.ipv4->src ^= 0x1;
      }
    }
    return inner_->process(pkt, in_port, switch_id);
  }
  std::string name() const override { return "corrupting"; }

 private:
  std::shared_ptr<net::ForwardingProgram> inner_;
  int at_switch_;
  Mode mode_;
};

// ---------------------------------------------------------------------------
// hop_count_limit
// ---------------------------------------------------------------------------

TEST(HopCountLimit, NormalPathsWithinBudget) {
  Fixture f;
  const int dep = f.net.deploy(compile_library_checker("hop_count_limit"));
  f.net.set_config_all(dep, "max_hops", {BitVec(8, 4)});
  f.send(f.h(0, 0), f.h(1, 0));  // 3 switch hops
  f.send(f.h(0, 0), f.h(0, 1));  // 1 switch hop
  EXPECT_EQ(f.net.counters().delivered, 2u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(HopCountLimit, DetourBeyondBudgetRejected) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto sr = std::make_shared<fwd::SourceRouteProgram>();
  for (int sw : fabric.leaves) net.set_program(sw, sr);
  for (int sw : fabric.spines) net.set_program(sw, sr);
  const int dep = net.deploy(compile_library_checker("hop_count_limit"));
  net.set_config_all(dep, "max_hops", {BitVec(8, 4)});
  // A 5-hop bounce route exceeds the 4-hop budget.
  p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 64);
  fwd::set_source_route(p, {fabric.leaf_uplink_port(0),
                            fabric.spine_down_port(0),
                            fabric.leaf_uplink_port(1),
                            fabric.spine_down_port(1),
                            fabric.leaf_host_port(0)});
  net.send_from_host(fabric.hosts[0][0], std::move(p));
  net.events().run();
  EXPECT_EQ(net.counters().rejected, 1u);
  ASSERT_FALSE(net.reports().empty());
  EXPECT_EQ(net.reports().back().values[0].value(), 5u);
}

TEST(HopCountLimit, IsRelocatableQuestion) {
  // hops > max_hops compares a mutating counter: NOT relocatable (an early
  // hop's count is smaller, so the comparison direction is fine, but the
  // analysis conservatively refuses non-boolean monotonicity).
  compiler::CompileOptions opts;
  opts.placement = compiler::CheckPlacement::kAuto;
  const auto c = compile_library_checker("hop_count_limit", opts);
  EXPECT_EQ(c->options.placement, compiler::CheckPlacement::kLastHop);
}

// ---------------------------------------------------------------------------
// dscp_unchanged
// ---------------------------------------------------------------------------

TEST(DscpUnchanged, CleanFabricPasses) {
  Fixture f;
  f.net.deploy(compile_library_checker("dscp_unchanged"));
  f.send(f.h(0, 0), f.h(1, 0), /*dscp=*/46);  // EF-marked voice
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(DscpUnchanged, BitFlipAtSpineCaught) {
  Fixture f;
  f.net.deploy(compile_library_checker("dscp_unchanged"));
  for (int spine : f.fabric.spines) {
    f.net.set_program(spine, std::make_shared<CorruptingSwitch>(
                                 f.routing, spine,
                                 CorruptingSwitch::Mode::kDscp));
  }
  f.send(f.h(0, 0), f.h(1, 0), /*dscp=*/46);
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
  ASSERT_FALSE(f.net.reports().empty());
  const auto& r = f.net.reports().back();
  EXPECT_EQ(r.values[0].value(), 46u);        // original marking
  EXPECT_EQ(r.values[1].value(), 46u ^ 4u);   // corrupted marking
}

TEST(DscpUnchanged, IntraLeafUnaffectedByBuggySpine) {
  Fixture f;
  f.net.deploy(compile_library_checker("dscp_unchanged"));
  for (int spine : f.fabric.spines) {
    f.net.set_program(spine, std::make_shared<CorruptingSwitch>(
                                 f.routing, spine,
                                 CorruptingSwitch::Mode::kDscp));
  }
  f.send(f.h(0, 0), f.h(0, 1), /*dscp=*/10);  // never touches a spine
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

// ---------------------------------------------------------------------------
// header_integrity
// ---------------------------------------------------------------------------

TEST(HeaderIntegrity, CleanFabricPasses) {
  Fixture f;
  f.net.deploy(compile_library_checker("header_integrity"));
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(HeaderIntegrity, AddressCorruptionCaughtAndReported) {
  Fixture f;
  f.net.deploy(compile_library_checker("header_integrity"));
  // Corrupt the source address at the spines: the packet still routes to
  // its destination, carrying the fault — which the checker rejects and
  // reports at the exit edge.
  for (int spine : f.fabric.spines) {
    f.net.set_program(spine, std::make_shared<CorruptingSwitch>(
                                 f.routing, spine,
                                 CorruptingSwitch::Mode::kSrcAddr));
  }
  f.send(f.h(0, 0), f.h(1, 1));
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
  ASSERT_FALSE(f.net.reports().empty());
  const auto& r = f.net.reports().back();
  EXPECT_EQ(r.values[0].value(), f.ip(f.h(0, 0)));          // declared src
  EXPECT_EQ(r.values[2].value(), f.ip(f.h(0, 0)) ^ 1u);     // observed src
}

TEST(HeaderIntegrity, BothExtraCheckersAreRelocatable) {
  compiler::CompileOptions opts;
  opts.placement = compiler::CheckPlacement::kAuto;
  for (const char* name : {"dscp_unchanged", "header_integrity"}) {
    const auto c = compile_library_checker(name, opts);
    EXPECT_TRUE(c->relocatable) << name << ": " << c->relocation_reason;
  }
}

}  // namespace
}  // namespace hydra
