// Reference LTLf semantics over finite traces (De Giacomo & Vardi 2013).
// Used as the oracle in the Theorem 3.1 equivalence property tests.
#pragma once

#include "ltlf/formula.hpp"

namespace hydra::ltlf {

// Truth of `f` at position `pos` of `trace`. The empty trace satisfies no
// atom, X phi, or F phi, and satisfies every G phi — standard LTLf.
bool eval(const Formula& f, const Trace& trace, std::size_t pos = 0);

}  // namespace hydra::ltlf
