file(REMOVE_RECURSE
  "CMakeFiles/ablation_check_placement.dir/ablation_check_placement.cpp.o"
  "CMakeFiles/ablation_check_placement.dir/ablation_check_placement.cpp.o.d"
  "ablation_check_placement"
  "ablation_check_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_check_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
