// Unit tests for the Indus parser: declarations, statements, expressions,
// the paper's figures verbatim, and the print->parse->print round trip.
#include <gtest/gtest.h>

#include "checkers/library.hpp"
#include "indus/parser.hpp"
#include "indus/pretty.hpp"

namespace hydra::indus {
namespace {

Program parse_ok(const std::string& src) {
  Diagnostics diags;
  Program p = parse_indus(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return p;
}

void parse_err(const std::string& src) {
  Diagnostics diags;
  parse_indus(src, diags);
  EXPECT_TRUE(diags.has_errors()) << "expected a parse error for:\n" << src;
}

TEST(Parser, MinimalProgram) {
  const Program p = parse_ok("{ } { } { }");
  EXPECT_TRUE(p.decls.empty());
  ASSERT_NE(p.init_block, nullptr);
  ASSERT_NE(p.tele_block, nullptr);
  ASSERT_NE(p.check_block, nullptr);
}

TEST(Parser, Declarations) {
  const Program p = parse_ok(R"(
    tele bit<8> a;
    sensor bit<32> b = 7;
    header bit<16> c @"hdr.udp.dst_port";
    control dict<bit<8>,bool> d;
    control e;
    { } { } { }
  )");
  ASSERT_EQ(p.decls.size(), 5u);
  EXPECT_EQ(p.decls[0].kind, VarKind::kTele);
  EXPECT_EQ(p.decls[0].type->bit_width(), 8);
  ASSERT_NE(p.decls[1].init, nullptr);
  EXPECT_EQ(p.decls[2].annotation, "hdr.udp.dst_port");
  EXPECT_TRUE(p.decls[3].type->is_dict());
  // Untyped control defaults to bit<32>.
  EXPECT_EQ(p.decls[4].type->bit_width(), 32);
}

TEST(Parser, NestedGenericTypeSplitsShiftToken) {
  const Program p = parse_ok(
      "control dict<bit<8>,bit<8>> t;\n{ } { } { }");
  ASSERT_EQ(p.decls.size(), 1u);
  EXPECT_EQ(p.decls[0].type->to_string(), "dict<bit<8>,bit<8>>");
}

TEST(Parser, TupleKeyDictType) {
  const Program p = parse_ok(
      "control dict<(bit<32>,bit<32>),bool> allowed;\n{ } { } { }");
  const TypePtr key = p.decls[0].type->key();
  ASSERT_TRUE(key->is_tuple());
  EXPECT_EQ(key->members().size(), 2u);
}

TEST(Parser, ArrayTypePostfix) {
  const Program p = parse_ok("tele bit<32>[15] loads;\n{ } { } { }");
  ASSERT_TRUE(p.decls[0].type->is_array());
  EXPECT_EQ(p.decls[0].type->array_size(), 15);
  EXPECT_EQ(p.decls[0].type->element()->bit_width(), 32);
}

TEST(Parser, StatementsKinds) {
  const Program p = parse_ok(R"(
    tele bit<8> x;
    tele bit<8>[4] xs;
    { pass; x = 1; x += 2; x -= 1; }
    { xs.push(x); report; report((x, x)); }
    { if (x == 1) { reject; } elsif (x == 2) { pass; } else { pass; } }
  )");
  ASSERT_EQ(p.init_block->body.size(), 4u);
  EXPECT_EQ(p.init_block->body[0]->kind, StmtKind::kPass);
  EXPECT_EQ(p.init_block->body[1]->kind, StmtKind::kAssign);
  EXPECT_EQ(p.init_block->body[2]->assign_op, AssignOp::kAdd);
  EXPECT_EQ(p.init_block->body[3]->assign_op, AssignOp::kSub);
  EXPECT_EQ(p.tele_block->body[0]->kind, StmtKind::kPush);
  EXPECT_EQ(p.tele_block->body[1]->kind, StmtKind::kReport);
  EXPECT_EQ(p.tele_block->body[2]->report_args.size(), 2u);
  const Stmt& ifs = *p.check_block->body[0];
  ASSERT_EQ(ifs.arms.size(), 2u);
  ASSERT_NE(ifs.else_body, nullptr);
}

TEST(Parser, ElseIfSugarsToElsif) {
  const Program p = parse_ok(R"(
    tele bit<8> x;
    { } { }
    { if (x == 1) { pass; } else if (x == 2) { pass; } }
  )");
  EXPECT_EQ(p.check_block->body[0]->arms.size(), 2u);
}

TEST(Parser, MultiVarForLoop) {
  const Program p = parse_ok(R"(
    tele bit<32>[4] a;
    tele bit<32>[4] b;
    { } { }
    { for (x, y in a, b) { report; } }
  )");
  const Stmt& f = *p.check_block->body[0];
  EXPECT_EQ(f.kind, StmtKind::kFor);
  ASSERT_EQ(f.loop_vars.size(), 2u);
  EXPECT_EQ(f.loop_vars[0], "x");
  EXPECT_EQ(f.iterables.size(), 2u);
}

TEST(Parser, PrecedenceArithOverComparison) {
  Diagnostics diags;
  Parser parser({}, diags);
  (void)parser;
  const Program p = parse_ok(R"(
    tele bool r;
    tele bit<8> a;
    { r = a + 1 > 2 && a < 3 || !r; } { } { }
  )");
  // (((a + 1) > 2) && (a < 3)) || (!r)
  const Expr& e = *p.init_block->body[0]->value;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.binop, BinOp::kOr);
  EXPECT_EQ(e.args[0]->binop, BinOp::kAnd);
  EXPECT_EQ(e.args[0]->args[0]->binop, BinOp::kGt);
  EXPECT_EQ(e.args[0]->args[0]->args[0]->binop, BinOp::kAdd);
}

TEST(Parser, InBindsLikeComparison) {
  const Program p = parse_ok(R"(
    tele bit<8>[4] xs;
    tele bool r;
    header bit<8> v;
    { r = v in xs && r; } { } { }
  )");
  const Expr& e = *p.init_block->body[0]->value;
  EXPECT_EQ(e.binop, BinOp::kAnd);
  EXPECT_EQ(e.args[0]->kind, ExprKind::kIn);
}

TEST(Parser, DictIndexWithTupleKey) {
  const Program p = parse_ok(R"(
    control dict<(bit<32>,bit<32>),bool> allowed;
    header bit<32> s;
    header bit<32> d;
    tele bool r;
    { r = allowed[(s, d)]; } { } { }
  )");
  const Expr& e = *p.init_block->body[0]->value;
  ASSERT_EQ(e.kind, ExprKind::kIndex);
  EXPECT_EQ(e.args[1]->kind, ExprKind::kTuple);
}

TEST(Parser, ReportTuplePayloadFlattens) {
  const Program p = parse_ok(R"(
    header bit<32> a;
    header bit<32> b;
    { } { report((a, b)); } { }
  )");
  EXPECT_EQ(p.tele_block->body[0]->report_args.size(), 2u);
}

TEST(Parser, CallExpressions) {
  const Program p = parse_ok(R"(
    tele bit<32>[4] xs;
    tele bit<32> r;
    { r = abs(r - 1) + length(xs); } { } { }
  )");
  const Expr& e = *p.init_block->body[0]->value;
  EXPECT_EQ(e.args[0]->kind, ExprKind::kCall);
  EXPECT_EQ(e.args[0]->name, "abs");
  EXPECT_EQ(e.args[1]->name, "length");
}

TEST(Parser, ErrorMissingSemicolon) { parse_err("tele bit<8> a\n{ } { } { }"); }
TEST(Parser, ErrorMissingBlock) { parse_err("{ } { }"); }
TEST(Parser, ErrorTrailingInput) { parse_err("{ } { } { } extra"); }
TEST(Parser, ErrorBadBitWidth) { parse_err("tele bit<0> a;\n{ } { } { }"); }
TEST(Parser, ErrorUnknownMethod) {
  parse_err("tele bit<8>[4] xs;\n{ xs.pop(); } { } { }");
}
TEST(Parser, ErrorForArityMismatch) {
  parse_err("tele bit<8>[4] a;\ntele bit<8>[4] b;\n{ for (x in a, b) { } } "
            "{ } { }");
}

// Every figure from the paper must parse verbatim (as shipped in the
// checker library).
class PaperFigures : public ::testing::TestWithParam<int> {};

TEST_P(PaperFigures, Parses) {
  const auto& spec =
      checkers::all_checkers()[static_cast<std::size_t>(GetParam())];
  Diagnostics diags;
  parse_indus(spec.source, diags);
  EXPECT_FALSE(diags.has_errors())
      << spec.name << ":\n" << diags.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllCheckers, PaperFigures,
                         ::testing::Range(0, static_cast<int>(checkers::all_checkers().size())),
                         [](const auto& info) {
                           return checkers::all_checkers()
                               [static_cast<std::size_t>(info.param)].name;
                         });

// Round-trip: pretty-printing a parsed program and re-parsing it yields a
// print-identical program (a fixed point after one normalization).
class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  const auto& spec =
      checkers::all_checkers()[static_cast<std::size_t>(GetParam())];
  Diagnostics d1;
  const Program p1 = parse_indus(spec.source, d1);
  ASSERT_FALSE(d1.has_errors()) << d1.to_string();
  const std::string printed1 = to_source(p1);
  Diagnostics d2;
  const Program p2 = parse_indus(printed1, d2);
  ASSERT_FALSE(d2.has_errors()) << spec.name << ":\n"
                                << d2.to_string() << "\n---\n" << printed1;
  EXPECT_EQ(printed1, to_source(p2)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllCheckers, RoundTrip, ::testing::Range(0, static_cast<int>(checkers::all_checkers().size())),
                         [](const auto& info) {
                           return checkers::all_checkers()
                               [static_cast<std::size_t>(info.param)].name;
                         });

}  // namespace
}  // namespace hydra::indus
