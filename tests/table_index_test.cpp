// Differential + unit tests for the indexed match-action lookup engine:
// for random table shapes, random entry mixes (exact / full-mask ternary /
// partial ternary / wildcard / LPM / range / point-range), and inserts
// interleaved with removals and clears, the indexed Table::lookup must
// return exactly the same entry as the reference linear scan on every key.
#include <gtest/gtest.h>

#include "p4rt/table.hpp"
#include "util/rng.hpp"

namespace hydra::p4rt {
namespace {

// ---------------------------------------------------------------------------
// Randomized differential: indexed lookup vs. linear reference
// ---------------------------------------------------------------------------

struct TableFuzzer {
  Rng rng;
  std::vector<MatchFieldSpec> spec;
  Table table;
  std::vector<std::vector<KeyPattern>> inserted_keys;  // for real removals
  std::uint64_t ops = 0;
  std::uint64_t lookups = 0;

  explicit TableFuzzer(std::uint64_t seed) : rng(seed) {
    const std::vector<int> widths = {8, 16, 32, 48};
    const std::vector<MatchKind> kinds = {MatchKind::kExact,
                                          MatchKind::kTernary,
                                          MatchKind::kLpm, MatchKind::kRange};
    const std::size_t arity = 1 + rng.below(3);
    for (std::size_t i = 0; i < arity; ++i) {
      spec.push_back({rng.pick(kinds), rng.pick(widths)});
    }
    table = Table("fuzz", spec);
  }

  // Small value domain so keys collide with patterns often.
  BitVec small(int width) { return BitVec(width, rng.below(64)); }

  KeyPattern random_pattern(const MatchFieldSpec& f) {
    switch (f.kind) {
      case MatchKind::kExact:
        return KeyPattern::exact(small(f.width));
      case MatchKind::kTernary: {
        const double roll = rng.uniform();
        if (roll < 0.3) return KeyPattern::exact(small(f.width));  // full mask
        if (roll < 0.5) return KeyPattern::wildcard(f.width);
        return KeyPattern::ternary(BitVec(f.width, rng.below(64)),
                                   BitVec(f.width, rng.next()));
      }
      case MatchKind::kLpm:
        return KeyPattern::lpm(
            BitVec(f.width, rng.next()),
            static_cast<int>(rng.below(static_cast<std::uint64_t>(f.width) + 1)));
      case MatchKind::kRange: {
        std::uint64_t lo = rng.below(64);
        std::uint64_t hi = rng.chance(0.3) ? lo : rng.below(64);
        if (hi < lo) std::swap(lo, hi);
        return KeyPattern::range(BitVec(f.width, lo), BitVec(f.width, hi));
      }
    }
    return KeyPattern::wildcard(f.width);
  }

  std::vector<BitVec> random_key() {
    std::vector<BitVec> key;
    for (const auto& f : spec) {
      // Mostly small values (to hit the small-domain patterns), sometimes
      // arbitrary bits to probe the masked paths.
      key.push_back(rng.chance(0.8) ? small(f.width)
                                    : BitVec(f.width, rng.next()));
    }
    return key;
  }

  void step() {
    const double roll = rng.uniform();
    if (roll < 0.70 || table.size() == 0) {
      TableEntry e;
      e.priority = static_cast<int>(rng.below(4));  // few levels → many ties
      for (const auto& f : spec) e.patterns.push_back(random_pattern(f));
      e.action_data.push_back(BitVec(32, rng.next()));
      inserted_keys.push_back(e.patterns);
      table.insert(std::move(e));
    } else if (roll < 0.90) {
      // Remove: usually a previously inserted key (real churn), sometimes a
      // fresh random pattern (usually a no-op).
      std::vector<KeyPattern> victim;
      if (!inserted_keys.empty() && rng.chance(0.8)) {
        victim = inserted_keys[rng.below(inserted_keys.size())];
      } else {
        for (const auto& f : spec) victim.push_back(random_pattern(f));
      }
      table.remove_if_key_equals(victim);
    } else if (roll < 0.93) {
      table.clear();
      inserted_keys.clear();
    }
    ++ops;
    for (int i = 0; i < 4; ++i) {
      const auto key = random_key();
      const TableEntry* indexed = table.lookup(key);
      const TableEntry* reference = table.lookup_linear_reference(key);
      ASSERT_EQ(indexed, reference)
          << "divergence after " << ops << " ops (table size "
          << table.size() << ")";
      // Exercise the last-hit cache: a repeated lookup must be stable.
      ASSERT_EQ(table.lookup(key), reference);
      ++lookups;
    }
  }
};

class TableIndexDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableIndexDifferential, IndexedMatchesLinearReference) {
  TableFuzzer fuzz(GetParam());
  // 500 mutation ops x 4 fresh keys x 2 lookups each; across the 30 seeds
  // this drives well over 10k randomized operations through every path.
  for (int i = 0; i < 500; ++i) {
    fuzz.step();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(fuzz.ops + fuzz.lookups, 2500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableIndexDifferential,
                         ::testing::Range<std::uint64_t>(1, 31));

// ---------------------------------------------------------------------------
// Priority-tie semantics must survive the index
// ---------------------------------------------------------------------------

TEST(TableIndex, ExactTieBrokenByInsertionOrder) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 1)}, "first", 3);
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 2)}, "second", 3);
  const TableEntry* hit = t.lookup({BitVec(8, 5)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action_data[0].value(), 1u);
  EXPECT_EQ(hit, t.lookup_linear_reference({BitVec(8, 5)}));
}

TEST(TableIndex, HigherPriorityExactReplacesEarlier) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 1)}, "low", 1);
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 2)}, "high", 9);
  EXPECT_EQ(t.lookup({BitVec(8, 5)})->action_data[0].value(), 2u);
}

TEST(TableIndex, ResidueBeatsExactOnPriority) {
  Table t("t", {{MatchKind::kTernary, 8}});
  TableEntry wild;
  wild.priority = 10;
  wild.patterns.push_back(KeyPattern::wildcard(8));
  wild.action_data.push_back(BitVec(8, 1));
  t.insert(std::move(wild));
  TableEntry ex;
  ex.priority = 1;
  ex.patterns.push_back(KeyPattern::exact(BitVec(8, 7)));
  ex.action_data.push_back(BitVec(8, 2));
  t.insert(std::move(ex));
  // The wildcard (residue path) outranks the exact (hash path).
  EXPECT_EQ(t.lookup({BitVec(8, 7)})->action_data[0].value(), 1u);
}

TEST(TableIndex, LpmProbesAllPrefixLengths) {
  Table t("t", {{MatchKind::kLpm, 32}});
  TableEntry wide;
  wide.priority = 30;  // priority outranks prefix length, like the scan
  wide.patterns.push_back(KeyPattern::lpm(BitVec(32, 0x0a000000), 8));
  wide.action_data.push_back(BitVec(8, 1));
  TableEntry narrow;
  narrow.priority = 5;
  narrow.patterns.push_back(KeyPattern::lpm(BitVec(32, 0x0a000100), 24));
  narrow.action_data.push_back(BitVec(8, 2));
  t.insert(std::move(wide));
  t.insert(std::move(narrow));
  EXPECT_EQ(t.lookup({BitVec(32, 0x0a000105)})->action_data[0].value(), 1u);
  EXPECT_EQ(t.lookup({BitVec(32, 0x0a000105)}),
            t.lookup_linear_reference({BitVec(32, 0x0a000105)}));
}

// ---------------------------------------------------------------------------
// Cache invalidation on table mutation
// ---------------------------------------------------------------------------

TEST(TableIndex, CacheInvalidatedByInsert) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 1)}, "old", 1);
  EXPECT_EQ(t.lookup({BitVec(8, 5)})->action_data[0].value(), 1u);
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 2)}, "new", 9);
  EXPECT_EQ(t.lookup({BitVec(8, 5)})->action_data[0].value(), 2u);
}

TEST(TableIndex, CacheInvalidatedByRemoveAndClear) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 1)});
  EXPECT_NE(t.lookup({BitVec(8, 5)}), nullptr);
  EXPECT_EQ(t.remove_if_key_equals({KeyPattern::exact(BitVec(8, 5))}), 1);
  EXPECT_EQ(t.lookup({BitVec(8, 5)}), nullptr);
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 3)});
  EXPECT_NE(t.lookup({BitVec(8, 5)}), nullptr);
  t.clear();
  EXPECT_EQ(t.lookup({BitVec(8, 5)}), nullptr);
}

// ---------------------------------------------------------------------------
// Kind-aware remove_if_key_equals
// ---------------------------------------------------------------------------

TEST(TableRemove, ExactIgnoresIrrelevantPatternFields) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 1)}, {BitVec(8, 10)});
  // Same exact value, but constructed with a different (irrelevant) mask.
  KeyPattern p = KeyPattern::ternary(BitVec(8, 1), BitVec(8, 0x0f));
  EXPECT_EQ(t.remove_if_key_equals({p}), 1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableRemove, RangeComparesBoundsOnly) {
  Table t("t", {{MatchKind::kRange, 16}});
  TableEntry e;
  e.patterns.push_back(KeyPattern::range(BitVec(16, 81), BitVec(16, 82)));
  e.action_data.push_back(BitVec(8, 1));
  t.insert(std::move(e));
  // A removal pattern with the same bounds but noise in value/mask/prefix
  // (as a ternary-style constructor would leave) must still match.
  KeyPattern p = KeyPattern::range(BitVec(16, 81), BitVec(16, 82));
  p.value = BitVec(16, 0xffff);
  p.mask = BitVec(16, 0xff00);
  p.prefix_len = 7;
  EXPECT_EQ(t.remove_if_key_equals({p}), 1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableRemove, TernaryComparesMaskedValue) {
  Table t("t", {{MatchKind::kTernary, 8}});
  TableEntry e;
  e.patterns.push_back(KeyPattern::ternary(BitVec(8, 0xa5), BitVec(8, 0xf0)));
  e.action_data.push_back(BitVec(8, 1));
  t.insert(std::move(e));
  // 0xa5 and 0xaf agree under mask 0xf0 → same match set → removed.
  EXPECT_EQ(t.remove_if_key_equals(
                {KeyPattern::ternary(BitVec(8, 0xaf), BitVec(8, 0xf0))}),
            1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableRemove, TernaryDifferentMaskDoesNotMatch) {
  Table t("t", {{MatchKind::kTernary, 8}});
  TableEntry e;
  e.patterns.push_back(KeyPattern::ternary(BitVec(8, 0xa0), BitVec(8, 0xf0)));
  e.action_data.push_back(BitVec(8, 1));
  t.insert(std::move(e));
  EXPECT_EQ(t.remove_if_key_equals(
                {KeyPattern::ternary(BitVec(8, 0xa0), BitVec(8, 0xff))}),
            0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableRemove, RemovesAllEquivalentEntriesAndReindexes) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 1)}, {BitVec(8, 10)}, "a", 1);
  t.insert_exact({BitVec(8, 2)}, {BitVec(8, 20)}, "b", 1);
  t.insert_exact({BitVec(8, 1)}, {BitVec(8, 30)}, "c", 5);
  EXPECT_EQ(t.remove_if_key_equals({KeyPattern::exact(BitVec(8, 1))}), 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup({BitVec(8, 1)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(8, 2)})->action_data[0].value(), 20u);
}

}  // namespace
}  // namespace hydra::p4rt
