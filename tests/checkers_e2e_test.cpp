// End-to-end deployment tests: every library checker deployed on the
// Figure 8 leaf-spine fabric, with both conforming traffic (must pass
// untouched) and violating traffic (must be rejected/reported).
#include <gtest/gtest.h>

#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

namespace hydra {
namespace {

using net::LeafSpine;
using net::Network;
using p4rt::Packet;

struct EcmpFixture {
  LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);

  int h(int leaf, int i) const {
    return fabric.hosts[static_cast<std::size_t>(leaf)]
                       [static_cast<std::size_t>(i)];
  }
  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }

  void send(int from, int to, std::uint16_t sport = 1000,
            std::uint16_t dport = 2000) {
    net.send_from_host(from, p4rt::make_udp(ip(from), ip(to), sport, dport,
                                            100));
    net.events().run();
  }
};

struct SrFixture {
  LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  Network net{fabric.topo};
  std::shared_ptr<fwd::SourceRouteProgram> prog =
      std::make_shared<fwd::SourceRouteProgram>();

  SrFixture() {
    for (int sw : fabric.leaves) net.set_program(sw, prog);
    for (int sw : fabric.spines) net.set_program(sw, prog);
  }
  int h(int leaf, int i) const {
    return fabric.hosts[static_cast<std::size_t>(leaf)]
                       [static_cast<std::size_t>(i)];
  }
  void send_route(int from, const std::vector<int>& ports) {
    Packet p = p4rt::make_udp(1, 2, 3, 4, 64);
    fwd::set_source_route(p, ports);
    net.send_from_host(from, std::move(p));
    net.events().run();
  }
};

// ---------------------------------------------------------------------------
// Multi-tenancy (Figure 1)
// ---------------------------------------------------------------------------

TEST(E2eMultiTenancy, SameTenantPassesCrossTenantRejected) {
  EcmpFixture f;
  const int dep = f.net.deploy(compile_library_checker("multi_tenancy"));
  // Leaf1's server ports belong to tenant 1, leaf2's to tenant 2.
  std::map<std::pair<int, int>, std::uint8_t> tenants;
  for (int i = 0; i < 2; ++i) {
    tenants[{f.fabric.leaves[0], f.fabric.leaf_host_port(i)}] = 1;
    tenants[{f.fabric.leaves[1], f.fabric.leaf_host_port(i)}] = 2;
  }
  configure_multi_tenancy(f.net, dep, tenants);

  f.send(f.h(0, 0), f.h(0, 1));  // tenant 1 -> tenant 1
  EXPECT_EQ(f.net.counters().delivered, 1u);
  f.send(f.h(0, 0), f.h(1, 0));  // tenant 1 -> tenant 2: isolation breach
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Valley-free source routing (Figure 7, §5.1)
// ---------------------------------------------------------------------------

TEST(E2eValleyFree, LegalPathsPass) {
  SrFixture f;
  const int dep = f.net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(f.net, dep, f.fabric);
  // All valley-free paths between all host pairs, via each spine.
  int sent = 0;
  for (int sl = 0; sl < 2; ++sl) {
    for (int si = 0; si < 2; ++si) {
      for (int dl = 0; dl < 2; ++dl) {
        for (int di = 0; di < 2; ++di) {
          if (sl == dl && si == di) continue;
          for (int spine = 0; spine < (sl == dl ? 1 : 2); ++spine) {
            f.send_route(f.h(sl, si),
                         fwd::leaf_spine_route(f.fabric, f.h(sl, si),
                                               f.h(dl, di), spine));
            ++sent;
          }
        }
      }
    }
  }
  EXPECT_EQ(f.net.counters().delivered, static_cast<std::uint64_t>(sent));
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(E2eValleyFree, ValleyPathRejected) {
  SrFixture f;
  const int dep = f.net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(f.net, dep, f.fabric);
  // Buggy sender: up to spine1, down to leaf2, up AGAIN to spine2, down to
  // leaf2, then out — visits two spines.
  f.send_route(f.h(0, 0), {f.fabric.leaf_uplink_port(0),
                           f.fabric.spine_down_port(1),
                           f.fabric.leaf_uplink_port(1),
                           f.fabric.spine_down_port(1),
                           f.fabric.leaf_host_port(0)});
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------------

TEST(E2eLoops, RevisitingASwitchRejected) {
  SrFixture f;
  f.net.deploy(compile_library_checker("loops"));
  // leaf1 -> spine1 -> leaf1 -> spine1 -> leaf2 -> host: leaf1 twice.
  f.send_route(f.h(0, 0), {f.fabric.leaf_uplink_port(0),
                           f.fabric.spine_down_port(0),
                           f.fabric.leaf_uplink_port(0),
                           f.fabric.spine_down_port(1),
                           f.fabric.leaf_host_port(0)});
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

TEST(E2eLoops, SimplePathPasses) {
  SrFixture f;
  f.net.deploy(compile_library_checker("loops"));
  f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                f.h(1, 0), 0));
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

// ---------------------------------------------------------------------------
// Waypointing
// ---------------------------------------------------------------------------

TEST(E2eWaypointing, PathThroughWaypointPasses) {
  SrFixture f;
  const int dep = f.net.deploy(compile_library_checker("waypointing"));
  configure_waypoint(f.net, dep, f.fabric.spines[0]);
  f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                f.h(1, 0), 0));
  EXPECT_EQ(f.net.counters().delivered, 1u);
}

TEST(E2eWaypointing, BypassingWaypointRejected) {
  SrFixture f;
  const int dep = f.net.deploy(compile_library_checker("waypointing"));
  configure_waypoint(f.net, dep, f.fabric.spines[0]);
  f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                f.h(1, 0), 1));  // via spine2
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Egress port validity
// ---------------------------------------------------------------------------

TEST(E2eEgressPorts, AllowedPortsPass) {
  EcmpFixture f;
  const int dep =
      f.net.deploy(compile_library_checker("egress_port_validity"));
  configure_egress_port_validity(f.net, dep);
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_EQ(f.net.counters().delivered, 1u);
}

TEST(E2eEgressPorts, DisallowedPortRejected) {
  EcmpFixture f;
  const int dep =
      f.net.deploy(compile_library_checker("egress_port_validity"));
  configure_egress_port_validity(f.net, dep);
  // Misconfiguration: clear leaf1's allowed set entirely.
  f.net.checker_table(dep, f.fabric.leaves[0], "allowed_eg_ports").clear();
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Routing validity
// ---------------------------------------------------------------------------

TEST(E2eRoutingValidity, NormalPathsPass) {
  EcmpFixture f;
  const int dep = f.net.deploy(compile_library_checker("routing_validity"));
  configure_routing_validity(f.net, dep, f.fabric);
  f.send(f.h(0, 0), f.h(1, 0));
  f.send(f.h(0, 0), f.h(0, 1));
  EXPECT_EQ(f.net.counters().delivered, 2u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(E2eRoutingValidity, LeafInMiddleRejected) {
  SrFixture f;
  const int dep = f.net.deploy(compile_library_checker("routing_validity"));
  configure_routing_validity(f.net, dep, f.fabric);
  // leaf1 -> spine1 -> leaf2 -> spine2 -> leaf2 -> host: leaf2 mid-path.
  f.send_route(f.h(0, 0), {f.fabric.leaf_uplink_port(0),
                           f.fabric.spine_down_port(1),
                           f.fabric.leaf_uplink_port(1),
                           f.fabric.spine_down_port(1),
                           f.fabric.leaf_host_port(0)});
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Service chains
// ---------------------------------------------------------------------------

TEST(E2eServiceChains, InOrderTraversalPasses) {
  SrFixture f;
  const int dep = f.net.deploy(compile_library_checker("service_chains"));
  configure_service_chain(
      f.net, dep,
      {f.fabric.leaves[0], f.fabric.spines[0], f.fabric.leaves[1]});
  f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                f.h(1, 0), 0));
  EXPECT_EQ(f.net.counters().delivered, 1u);
}

TEST(E2eServiceChains, WrongSpineRejected) {
  SrFixture f;
  const int dep = f.net.deploy(compile_library_checker("service_chains"));
  configure_service_chain(
      f.net, dep,
      {f.fabric.leaves[0], f.fabric.spines[0], f.fabric.leaves[1]});
  f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                f.h(1, 0), 1));  // spine2
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Stateful firewall (Figure 3)
// ---------------------------------------------------------------------------

TEST(E2eFirewall, AllowedFlowPassesAndReverseIsReported) {
  EcmpFixture f;
  const int dep = f.net.deploy(compile_library_checker("stateful_firewall"));
  const BitVec src(32, f.ip(f.h(0, 0)));
  const BitVec dst(32, f.ip(f.h(1, 0)));
  f.net.dict_insert_all(dep, "allowed", {src, dst},
                        {BitVec::from_bool(true)});
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_EQ(f.net.counters().delivered, 1u);
  // The reverse direction is not yet allowed: the checker reported it so
  // the control plane can install it.
  ASSERT_FALSE(f.net.reports().empty());
  const auto& r = f.net.reports().back();
  EXPECT_EQ(r.values[0].value(), dst.value());
  EXPECT_EQ(r.values[1].value(), src.value());

  // Control loop: install the reverse rule from the report, then the
  // reverse flow passes without violation.
  f.net.dict_insert_all(dep, "allowed", {r.values[0], r.values[1]},
                        {BitVec::from_bool(true)});
  f.net.clear_reports();
  f.send(f.h(1, 0), f.h(0, 0));
  EXPECT_EQ(f.net.counters().delivered, 2u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(E2eFirewall, UnsolicitedFlowRejected) {
  EcmpFixture f;
  f.net.deploy(compile_library_checker("stateful_firewall"));
  f.send(f.h(1, 0), f.h(0, 0));  // nothing allowed
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Datacenter uplink load balance (Figure 2)
// ---------------------------------------------------------------------------

TEST(E2eLoadBalance, SkewedTrafficTriggersReport) {
  SrFixture f;
  const int dep =
      f.net.deploy(compile_library_checker("dc_uplink_load_balance"));
  configure_load_balance(f.net, dep, f.fabric, /*threshold_bytes=*/500);
  // Force every packet over the LEFT uplink: the imbalance grows past the
  // threshold and the checker reports.
  for (int i = 0; i < 10; ++i) {
    f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                  f.h(1, 0), 0));
  }
  EXPECT_EQ(f.net.counters().delivered, 10u);
  EXPECT_FALSE(f.net.reports().empty());
}

TEST(E2eLoadBalance, BalancedTrafficStaysQuiet) {
  SrFixture f;
  const int dep =
      f.net.deploy(compile_library_checker("dc_uplink_load_balance"));
  configure_load_balance(f.net, dep, f.fabric, /*threshold_bytes=*/5000);
  // Alternate uplinks: loads stay within the threshold.
  for (int i = 0; i < 10; ++i) {
    f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                  f.h(1, 0), i % 2));
  }
  EXPECT_EQ(f.net.counters().delivered, 10u);
  EXPECT_TRUE(f.net.reports().empty());
}

// ---------------------------------------------------------------------------
// Source routing with path validation
// ---------------------------------------------------------------------------

TEST(E2ePathValidation, ValidSourceRoutePasses) {
  SrFixture f;
  const int dep = f.net.deploy(
      compile_library_checker("source_routing_path_validation"));
  configure_path_validation(f.net, dep, f.fabric);
  f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                f.h(1, 0), 0));
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

namespace pathval {
// A switch that ignores the source route at one hop and forwards out a
// port of its own choosing — the class of forwarding bug this checker
// exists to catch (the verification is independent of the forwarding).
class MisforwardingSwitch : public net::ForwardingProgram {
 public:
  MisforwardingSwitch(std::shared_ptr<net::ForwardingProgram> inner,
                      int at_switch, int wrong_port)
      : inner_(std::move(inner)), at_switch_(at_switch),
        wrong_port_(wrong_port) {}
  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override {
    Decision d = inner_->process(pkt, in_port, switch_id);
    if (switch_id == at_switch_ && !d.drop) d.eg_port = wrong_port_;
    return d;
  }
  std::string name() const override { return "misforwarding"; }

 private:
  std::shared_ptr<net::ForwardingProgram> inner_;
  int at_switch_;
  int wrong_port_;
};
}  // namespace pathval

TEST(E2ePathValidation, MisforwardingSwitchCaughtAtEdge) {
  SrFixture f;
  const int dep = f.net.deploy(
      compile_library_checker("source_routing_path_validation"));
  configure_path_validation(f.net, dep, f.fabric);
  // The spine ignores the declared route and sends the packet down to
  // leaf1 instead of leaf2; the remaining pops then deliver it to the
  // WRONG host. The checker compares declared vs actual egress ports and
  // rejects at the exit edge.
  const int spine = f.fabric.spines[0];
  f.net.set_program(spine, std::make_shared<pathval::MisforwardingSwitch>(
                               f.prog, spine, f.fabric.spine_down_port(0)));
  f.send_route(f.h(0, 0), fwd::leaf_spine_route(f.fabric, f.h(0, 0),
                                                f.h(1, 0), 0));
  EXPECT_EQ(f.net.counters().rejected, 1u);
  EXPECT_EQ(f.net.counters().delivered, 0u);
}

// ---------------------------------------------------------------------------
// VLAN isolation (with a buggy tag-rewriting switch)
// ---------------------------------------------------------------------------

namespace vlan {
// A forwarding program that (wrongly) rewrites the VLAN tag mid-path.
class RewritingForwarder : public net::ForwardingProgram {
 public:
  RewritingForwarder(std::shared_ptr<net::ForwardingProgram> inner,
                     int at_switch, std::uint16_t new_vid)
      : inner_(std::move(inner)), at_switch_(at_switch), new_vid_(new_vid) {}
  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override {
    if (switch_id == at_switch_ && pkt.vlan) pkt.vlan->vid = new_vid_;
    return inner_->process(pkt, in_port, switch_id);
  }
  std::string name() const override { return "buggy-rewriter"; }

 private:
  std::shared_ptr<net::ForwardingProgram> inner_;
  int at_switch_;
  std::uint16_t new_vid_;
};
}  // namespace vlan

TEST(E2eVlanIsolation, ConsistentVlanPasses) {
  EcmpFixture f;
  f.net.deploy(compile_library_checker("vlan_isolation"));
  p4rt::Packet p =
      p4rt::make_udp(f.ip(f.h(0, 0)), f.ip(f.h(1, 0)), 1000, 2000, 100);
  p.vlan = p4rt::VlanH{100};
  f.net.send_from_host(f.h(0, 0), std::move(p));
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(E2eVlanIsolation, MidPathTagRewriteRejected) {
  EcmpFixture f;
  f.net.deploy(compile_library_checker("vlan_isolation"));
  // Wrap both spines with the buggy rewriter.
  for (int spine : f.fabric.spines) {
    f.net.set_program(spine, std::make_shared<vlan::RewritingForwarder>(
                                 f.routing, spine, 200));
  }
  p4rt::Packet p =
      p4rt::make_udp(f.ip(f.h(0, 0)), f.ip(f.h(1, 0)), 1000, 2000, 100);
  p.vlan = p4rt::VlanH{100};
  f.net.send_from_host(f.h(0, 0), std::move(p));
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, 0u);
  EXPECT_EQ(f.net.counters().rejected, 1u);
  ASSERT_FALSE(f.net.reports().empty());
}

// ---------------------------------------------------------------------------
// All checkers together (the paper's "all checkers on" configuration)
// ---------------------------------------------------------------------------

TEST(E2eAllCheckers, WellBehavedTrafficPassesEverything) {
  EcmpFixture f;
  std::map<std::pair<int, int>, std::uint8_t> tenants;
  for (int leaf = 0; leaf < 2; ++leaf) {
    for (int i = 0; i < 2; ++i) {
      tenants[{f.fabric.leaves[static_cast<std::size_t>(leaf)],
               f.fabric.leaf_host_port(i)}] = 1;
    }
  }
  const int mt = f.net.deploy(compile_library_checker("multi_tenancy"));
  configure_multi_tenancy(f.net, mt, tenants);
  const int vf = f.net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(f.net, vf, f.fabric);
  f.net.deploy(compile_library_checker("loops"));
  const int ep = f.net.deploy(compile_library_checker("egress_port_validity"));
  configure_egress_port_validity(f.net, ep);
  const int rv = f.net.deploy(compile_library_checker("routing_validity"));
  configure_routing_validity(f.net, rv, f.fabric);
  const int fw = f.net.deploy(compile_library_checker("stateful_firewall"));
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
          f.net.dict_insert_all(fw, "allowed",
                                {BitVec(32, f.ip(f.h(a, i))),
                                 BitVec(32, f.ip(f.h(b, j)))},
                                {BitVec::from_bool(true)});
        }
      }
    }
  }
  for (int i = 0; i < 8; ++i) {
    f.send(f.h(0, 0), f.h(1, 0), static_cast<std::uint16_t>(1000 + i));
  }
  EXPECT_EQ(f.net.counters().delivered, 8u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

}  // namespace
}  // namespace hydra
