// Live observability HTTP plane: snapshot publication + a tiny scrape
// server.
//
// Determinism contract: the HTTP thread NEVER touches live simulator
// state. At each committed export tick (engines quiesced, shard metrics
// absorbed) the Network renders every servable body into an immutable
// LiveSnapshot and swaps it into the SnapshotPublisher; scrapes serve
// whichever snapshot was current when the request arrived, byte for byte.
// Two runs that publish the same tick therefore serve identical bodies
// regardless of engine kind, worker count, or scrape timing — the engine
// differential test asserts this per tick index.
//
// The publisher is a mutex-guarded shared_ptr swap plus a monotone atomic
// epoch (the published tick count). Readers take a shared_ptr copy under
// the lock — snapshots outlive the swap for as long as a response needs
// them — and the epoch lets pollers detect publication without acquiring
// anything else. This is the TSan-clean spelling of the double-buffer +
// epoch scheme: the swap is the only contended operation and it is O(1).
//
// HttpServer is a dependency-free HTTP/1.1 responder (Linux sockets): a
// poll loop on its own thread accepts loopback connections and serves
//
//   GET /metrics     text/plain; version=0.0.4   Prometheus exposition
//   GET /healthz     application/json            SLO verdict (always 200)
//   GET /series      application/json            windowed series
//   GET /violations  application/json            forensics reports
//   GET /topk        application/json            top-K attribution
//   GET /snapshot    text/plain                  obs state snapshot
//
// plus two control routes that never touch simulator state on the HTTP
// thread either — they enqueue a Command that the daemon's main loop
// drains between event slices (202 Accepted; 400 on a malformed query):
//
//   GET /deploy?checker=<name>   stage a rolling deploy of a named checker
//   GET /undeploy?dep=<id>       rolling-retire a deployment slot
//
// plus `X-Hydra-Tick: <n>` on every 200 so scrapers can pin a tick. A
// request before the first publication gets 503; unknown paths 404; other
// methods 405. Connections are Connection: close — scrape clients open
// per request, which keeps the server a single poll loop with no
// connection table.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hydra::obs {

// Everything the HTTP plane can serve, rendered at one committed export
// tick. Immutable after publication.
struct LiveSnapshot {
  std::uint64_t tick_index = 0;  // ExportScheduler::captured() at publish
  double sim_time = 0.0;         // virtual time of the tick boundary
  std::string metrics_text;      // Prometheus exposition (incl. topk)
  std::string series_json;
  std::string health_json;
  std::string violations_json;
  std::string topk_json;
  std::string snapshot_text;     // Network::obs_snapshot() body
};

class SnapshotPublisher {
 public:
  // Test/CI hook, invoked synchronously on the publishing (main) thread
  // after the swap.
  using PublishHook = std::function<void(const LiveSnapshot&)>;

  // Main thread only.
  void publish(LiveSnapshot snap);

  // Any thread. Null until the first publish.
  std::shared_ptr<const LiveSnapshot> acquire() const;

  // Number of publications so far (monotone, relaxed).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  void set_on_publish(PublishHook hook) { hook_ = std::move(hook); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const LiveSnapshot> current_;
  std::atomic<std::uint64_t> epoch_{0};
  PublishHook hook_;
};

class HttpServer {
 public:
  // Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  // starts the serving thread. Throws std::runtime_error on bind failure.
  HttpServer(SnapshotPublisher& publisher, std::uint16_t port);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // A control request accepted by /deploy or /undeploy; the simulator
  // never sees it until the owning main loop drains the queue.
  struct Command {
    enum class Kind { kDeploy, kUndeploy };
    Kind kind = Kind::kDeploy;
    std::string checker;  // kDeploy: checker name from the query
    int deployment = -1;  // kUndeploy: slot id from the query
  };

  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  // Returns and clears the commands accepted since the last call, in
  // arrival order. Main thread only (the caller applies them to the sim).
  std::vector<Command> drain_commands();
  // Idempotent; joins the serving thread.
  void stop();

 private:
  void serve();
  void handle_connection(int fd);

  SnapshotPublisher& publisher_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: stop() wakes the poll loop
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::mutex cmd_mu_;
  std::vector<Command> commands_;  // guarded by cmd_mu_
  std::thread thread_;
};

// Minimal blocking HTTP GET against 127.0.0.1:`port` for tests and the
// scrape bench: returns false on connect/protocol failure, else fills
// `*body` (and `*status` when non-null) from the response.
bool http_get(std::uint16_t port, const std::string& path, std::string* body,
              int* status = nullptr);

}  // namespace hydra::obs
