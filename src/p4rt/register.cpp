#include "p4rt/register.hpp"

#include <stdexcept>

namespace hydra::p4rt {

RegisterArray::RegisterArray(std::string name, int width, std::size_t cells,
                             BitVec initial)
    : name_(std::move(name)),
      width_(width),
      initial_(initial.resize(width)),
      cells_(cells, initial.resize(width)) {}

BitVec RegisterArray::read(std::size_t index) const {
  if (index >= cells_.size()) {
    throw std::out_of_range("register '" + name_ + "' index " +
                            std::to_string(index));
  }
  return cells_[index];
}

void RegisterArray::write(std::size_t index, const BitVec& value) {
  if (index >= cells_.size()) {
    throw std::out_of_range("register '" + name_ + "' index " +
                            std::to_string(index));
  }
  cells_[index] = value.resize(width_);
}

BitVec RegisterArray::add(std::size_t index, const BitVec& delta) {
  write(index, read(index).add(delta.resize(width_)));
  return cells_[index];
}

void RegisterArray::reset() {
  for (auto& c : cells_) c = initial_;
}

}  // namespace hydra::p4rt
