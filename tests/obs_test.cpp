// Observability layer tests: metrics registry semantics, zero-cost
// disabled paths, table/interpreter/network instrumentation, and per-packet
// hop tracing through a leaf-spine fabric.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p4rt/table.hpp"

using namespace hydra;

// ---- registry -------------------------------------------------------------

TEST(Registry, CounterSemantics) {
  obs::Registry reg;
  obs::Counter c = reg.counter("x");
  EXPECT_TRUE(c.attached());
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.counter_value("x"), 42u);
  // Re-registering the same name shares the slot.
  obs::Counter again = reg.counter("x");
  again.inc();
  EXPECT_EQ(c.value(), 43u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, GaugeSemantics) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("level");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("level"), 2.0);
}

TEST(Registry, HistogramSemantics) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  ASSERT_NE(h.data(), nullptr);
  EXPECT_EQ(h.data()->buckets, (std::vector<std::uint64_t>{2, 1, 0, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(Registry, KindConflictThrows) {
  obs::Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("m", {1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, DetachedHandlesAreNoOps) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(3.0);
  h.observe(1.0);
  EXPECT_FALSE(c.attached());
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, ResetZeroesValuesKeepsRegistrations) {
  obs::Registry reg;
  obs::Counter c = reg.counter("c");
  obs::Gauge g = reg.gauge("g");
  obs::Histogram h = reg.histogram("h", {1.0});
  c.inc(7);
  g.set(7.0);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(c.value(), 0u);  // handles stay valid
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.data()->buckets.size(), 2u);
  c.inc();
  EXPECT_EQ(reg.counter_value("c"), 1u);
}

TEST(Registry, SnapshotIsDeterministicAcrossRegistrationOrder) {
  obs::Registry a;
  a.counter("zeta").inc(3);
  a.counter("alpha").inc(1);
  a.gauge("mid").set(2.5);
  a.histogram("hist", {1.0, 2.0}).observe(1.5);

  obs::Registry b;
  b.histogram("hist", {1.0, 2.0}).observe(1.5);
  b.gauge("mid").set(2.5);
  b.counter("alpha").inc(1);
  b.counter("zeta").inc(3);

  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_NE(a.to_json().find("\"alpha\": 1"), std::string::npos);
  EXPECT_NE(a.to_csv().find("counter,zeta,value,3"), std::string::npos);
}

TEST(Registry, AbsorbMergesAllKinds) {
  obs::Registry main;
  obs::Registry shard;
  obs::Counter mc = main.counter("hops");
  mc.inc(5);
  shard.counter("hops").inc(7);
  shard.counter("shard_only").inc(3);
  obs::Gauge mg = main.gauge("watermark");
  mg.set(2.0);
  shard.gauge("watermark").set(9.0);
  obs::Histogram mh = main.histogram("lat", {1.0, 10.0});
  mh.observe(0.5);
  obs::Histogram sh = shard.histogram("lat", {1.0, 10.0});
  sh.observe(5.0);
  sh.observe(50.0);
  shard.histogram("fresh", {2.0}).observe(1.0);

  main.absorb_counters(shard);

  // Counters add; names absent from main are registered on the fly.
  EXPECT_EQ(main.counter_value("hops"), 12u);
  EXPECT_EQ(main.counter_value("shard_only"), 3u);
  // Gauges take the max — a shard gauge is a high-water mark.
  EXPECT_DOUBLE_EQ(main.gauge_value("watermark"), 9.0);
  // Histograms merge bucket-wise; fresh ones are copied bounds and all.
  EXPECT_EQ(mh.data()->buckets, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(mh.count(), 3u);
  EXPECT_DOUBLE_EQ(mh.sum(), 55.5);
  EXPECT_NE(main.to_json().find("\"fresh\""), std::string::npos);

  // The source is zeroed so the next epoch starts fresh...
  EXPECT_EQ(shard.counter_value("hops"), 0u);
  EXPECT_DOUBLE_EQ(shard.gauge_value("watermark"), 0.0);
  EXPECT_EQ(sh.count(), 0u);
  // ...and a second absorb neither double-counts nor loses the gauge max.
  main.absorb_counters(shard);
  EXPECT_EQ(main.counter_value("hops"), 12u);
  EXPECT_DOUBLE_EQ(main.gauge_value("watermark"), 9.0);

  // Mismatched histogram bounds are a wiring bug, not silently merged.
  obs::Registry other;
  other.histogram("lat", {1.0, 20.0}).observe(1.0);
  EXPECT_THROW(main.absorb_counters(other), std::invalid_argument);
}

// ---- table instrumentation ------------------------------------------------

TEST(TableMetrics, CountsHitsMissesAndCacheHits) {
  obs::Registry reg;
  p4rt::Table with{"t", {{p4rt::MatchKind::kExact, 32}}};
  p4rt::Table without{"t", {{p4rt::MatchKind::kExact, 32}}};
  p4rt::TableMetrics tm;
  tm.hits = reg.counter("t.hits");
  tm.misses = reg.counter("t.misses");
  tm.cache_hits = reg.counter("t.cache_hits");
  with.attach_metrics(tm);
  for (p4rt::Table* t : {&with, &without}) {
    t->insert_exact({BitVec(32, 5)}, {BitVec(32, 50)});
  }

  const std::vector<BitVec> hit_key{BitVec(32, 5)};
  const std::vector<BitVec> miss_key{BitVec(32, 6)};
  // Instrumented and uninstrumented tables answer identically.
  EXPECT_EQ(with.lookup(hit_key) != nullptr, without.lookup(hit_key) != nullptr);
  EXPECT_EQ(with.lookup(miss_key), nullptr);
  EXPECT_EQ(without.lookup(miss_key), nullptr);
  with.lookup(miss_key);  // served by the last-hit cache

  EXPECT_EQ(reg.counter_value("t.hits"), 1u);
  EXPECT_EQ(reg.counter_value("t.misses"), 2u);
  EXPECT_EQ(reg.counter_value("t.cache_hits"), 1u);
}

// ---- network instrumentation ---------------------------------------------

namespace {

struct Bed {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);
  int dep = net.deploy(compile_library_checker("stateful_firewall"));

  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }

  // Installs the bidirectional allow entries the firewall checker wants.
  void allow(int a, int b) {
    for (const auto& [s, d] : {std::pair{a, b}, std::pair{b, a}}) {
      net.dict_insert_all(dep, "allowed",
                          {BitVec(32, ip(s)), BitVec(32, ip(d))},
                          {BitVec::from_bool(true)});
    }
  }

  void send(int from, int to) {
    net.send_from_host(from, p4rt::make_udp(ip(from), ip(to), 40000, 80, 64));
    net.events().run();
  }
};

}  // namespace

TEST(NetworkObs, MetricsEndToEnd) {
  Bed bed;
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.allow(h0, h2);
  bed.net.set_observability(true);
  bed.send(h0, h2);

  obs::Registry& reg = bed.net.metrics();
  // Cross-leaf path: leaf -> spine -> leaf = 3 switch traversals.
  std::uint64_t forwarded = 0;
  for (const char* sw : {"leaf1", "leaf2", "spine1", "spine2"}) {
    forwarded +=
        reg.counter_value("net.switch." + std::string(sw) + ".forwarded");
  }
  EXPECT_EQ(forwarded, 3u);
  EXPECT_EQ(reg.counter_value("checker.stateful_firewall.init_runs"), 1u);
  EXPECT_EQ(reg.counter_value("checker.stateful_firewall.tele_runs"), 3u);
  EXPECT_EQ(reg.counter_value("checker.stateful_firewall.check_runs"), 1u);
  EXPECT_EQ(reg.counter_value("checker.stateful_firewall.rejects"), 0u);
  EXPECT_GT(reg.counter_value("p4rt.table.stateful_firewall.allowed.hits"),
            0u);
  EXPECT_GT(
      reg.counter_value("p4rt.interp.stateful_firewall.instructions"), 0u);
  EXPECT_GT(reg.counter_value("fwd.ipv4_ecmp.routes.hits"), 0u);

  const std::string json = bed.net.metrics_json();
  EXPECT_NE(json.find("\"net.packets.delivered\": 1"), std::string::npos);
  EXPECT_NE(json.find(".utilization"), std::string::npos);
  // 4 switches x 2 directional entries (src->dst and dst->src).
  EXPECT_DOUBLE_EQ(
      reg.gauge_value("p4rt.table.stateful_firewall.allowed.entries"), 8.0);
}

TEST(NetworkObs, MetricsAccessorsThrowWhileDisabled) {
  Bed bed;
  EXPECT_THROW(bed.net.metrics(), std::logic_error);
  EXPECT_THROW(bed.net.trace_sink(), std::logic_error);
  EXPECT_FALSE(bed.net.observability_enabled());
}

TEST(NetworkObs, DisableDetachesHandlesSafely) {
  Bed bed;
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.allow(h0, h2);
  bed.net.set_observability(true);
  bed.send(h0, h2);
  bed.net.set_observability(false);
  EXPECT_FALSE(bed.net.observability_enabled());
  // Post-disable traffic must not touch the destroyed registry (ASan/UBSan
  // in CI guards the dangling-handle case).
  bed.send(h0, h2);
  EXPECT_EQ(bed.net.counters().delivered, 2u);
}

TEST(NetworkObs, TracedPacketThroughLeafSpine) {
  Bed bed;
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.allow(h0, h2);
  bed.net.trace_next(1);
  bed.send(h0, h2);
  bed.send(h0, h2);  // second packet is beyond the sampling budget

  const auto& traces = bed.net.trace_sink().traces();
  ASSERT_EQ(traces.size(), 1u);
  const obs::PacketTrace& t = traces.front();
  EXPECT_EQ(t.fate, obs::PacketFate::kDelivered);
  EXPECT_NE(t.flow.find(" udp"), std::string::npos);
  ASSERT_EQ(t.hops.size(), 3u);
  EXPECT_EQ(t.hops[0].switch_name, "leaf1");
  EXPECT_EQ(t.hops[2].switch_name, "leaf2");
  EXPECT_TRUE(t.hops[0].first_hop);
  EXPECT_FALSE(t.hops[0].last_hop);
  EXPECT_TRUE(t.hops[2].last_hop);
  for (const auto& h : t.hops) {
    EXPECT_GE(h.eg_port, 0);
    EXPECT_EQ(h.forwarding, "ipv4-ecmp");
    EXPECT_FALSE(h.rejected);
  }
  // First hop ran init then tele; last hop ran the check block.
  ASSERT_EQ(t.hops[0].checkers.size(), 2u);
  EXPECT_TRUE(t.hops[0].checkers[0].ran_init);
  EXPECT_TRUE(t.hops[0].checkers[1].ran_tele);
  ASSERT_EQ(t.hops[2].checkers.size(), 1u);
  EXPECT_TRUE(t.hops[2].checkers[0].ran_check);
  EXPECT_FALSE(t.hops[2].checkers[0].reject);

  // Delivered-hop histogram saw the 3-hop journey.
  const std::string json = bed.net.metrics_json();
  EXPECT_NE(json.find("net.delivered.hops"), std::string::npos);
  EXPECT_NE(bed.net.trace_sink().to_json().find("\"fate\": \"delivered\""),
            std::string::npos);
}

TEST(NetworkObs, TraceRecordsRejectVerdictAndReportGainsFlowIdentity) {
  Bed bed;  // no allow entries: the firewall rejects at the last hop
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.net.trace_next(1);
  bed.send(h0, h2);

  ASSERT_EQ(bed.net.trace_sink().traces().size(), 1u);
  const obs::PacketTrace& t = bed.net.trace_sink().traces().front();
  EXPECT_EQ(t.fate, obs::PacketFate::kRejected);
  ASSERT_EQ(t.hops.size(), 3u);
  EXPECT_TRUE(t.hops[2].rejected);
  const obs::CheckerHopRecord& last = t.hops[2].checkers.back();
  EXPECT_TRUE(last.reject);
  ASSERT_FALSE(last.reports.empty());
  // The firewall's tele.violated flag was set at the first hop and carried.
  bool saw_violated = false;
  for (const auto& f : t.hops[0].checkers[0].tele) {
    if (f.name.find("violated") != std::string::npos) {
      saw_violated = f.after == 1;
    }
  }
  EXPECT_TRUE(saw_violated);

  // The ReportRecord names the flow and the hop where it fired.
  ASSERT_FALSE(bed.net.reports().empty());
  const net::ReportRecord& r = bed.net.reports().back();
  EXPECT_TRUE(r.flow.parsed);
  EXPECT_EQ(r.flow.src_ip, bed.ip(h0));
  EXPECT_EQ(r.flow.dst_ip, bed.ip(h2));
  EXPECT_EQ(r.flow.src_port, 40000);
  EXPECT_EQ(r.flow.dst_port, 80);
  EXPECT_EQ(r.hop_count, 3);
  EXPECT_NE(r.flow.to_string().find(":40000 -> "), std::string::npos);

  EXPECT_EQ(bed.net.metrics().counter_value(
                "checker.stateful_firewall.rejects"), 1u);
  // Narrative renders the verdict for terminal consumption.
  EXPECT_NE(obs::TraceSink::narrative(t).find("VERDICT: reject"),
            std::string::npos);
}

// ---- Prometheus exposition ------------------------------------------------

TEST(Prometheus, EscapesLabelValues) {
  EXPECT_EQ(obs::prom_escape("plain"), "plain");
  EXPECT_EQ(obs::prom_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");

  obs::Registry reg;
  reg.counter("weird", "hydra_weird_total", {{"name", "q\"v\\x\ny"}}).inc();
  EXPECT_NE(obs::to_prometheus(reg).find(
                "hydra_weird_total{name=\"q\\\"v\\\\x\\ny\"} 1"),
            std::string::npos);
}

TEST(Prometheus, FamilyFromNameSanitizesAndSuffixes) {
  using obs::MetricKind;
  EXPECT_EQ(obs::prom_family_from_name("net.packets.delivered",
                                       MetricKind::kCounter),
            "hydra_net_packets_delivered_total");
  // Counters already ending in _total keep a single suffix.
  EXPECT_EQ(obs::prom_family_from_name("x_total", MetricKind::kCounter),
            "hydra_x_total");
  EXPECT_EQ(obs::prom_family_from_name("net.time_s", MetricKind::kGauge),
            "hydra_net_time_s");
  EXPECT_EQ(obs::prom_family_from_name("net.delivered.hops",
                                       MetricKind::kHistogram),
            "hydra_net_delivered_hops");
}

TEST(Prometheus, ExpositionIsSortedTypedAndCumulative) {
  obs::Registry reg;
  // Registered deliberately out of order: families and samples must still
  // come out sorted.
  reg.counter("b.count", "hydra_zeta_total", {{"property", "p1"}}).inc(2);
  reg.counter("a.count", "hydra_zeta_total", {{"property", "p0"}}).inc();
  reg.gauge("g", "hydra_alpha", {{"k", "v"}}).set(1.5);
  obs::Histogram h =
      reg.histogram("h", "hydra_lat_seconds", {}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const std::string text = obs::to_prometheus(reg);
  const std::string one = obs::detail::format_double(1.0);
  const std::string ten = obs::detail::format_double(10.0);
  const auto pos = [&text](const std::string& needle) {
    const std::size_t p = text.find(needle);
    EXPECT_NE(p, std::string::npos) << needle << "\nin:\n" << text;
    return p;
  };
  // TYPE line per family, families in sorted order.
  const std::size_t alpha = pos("# TYPE hydra_alpha gauge\n");
  const std::size_t lat = pos("# TYPE hydra_lat_seconds histogram\n");
  const std::size_t zeta = pos("# TYPE hydra_zeta_total counter\n");
  EXPECT_LT(alpha, lat);
  EXPECT_LT(lat, zeta);
  // Samples within a family sorted by label body.
  EXPECT_LT(pos("hydra_zeta_total{property=\"p0\"} 1\n"),
            pos("hydra_zeta_total{property=\"p1\"} 2\n"));
  // Buckets are cumulative, +Inf terminated, with _sum and _count.
  pos("hydra_lat_seconds_bucket{le=\"" + one + "\"} 1\n");
  pos("hydra_lat_seconds_bucket{le=\"" + ten + "\"} 2\n");
  pos("hydra_lat_seconds_bucket{le=\"+Inf\"} 3\n");
  pos("hydra_lat_seconds_sum " + obs::detail::format_double(105.5) + "\n");
  pos("hydra_lat_seconds_count 3\n");
  pos("hydra_alpha{k=\"v\"} " + obs::detail::format_double(1.5) + "\n");
}

TEST(Prometheus, FamilyKindConflictThrows) {
  obs::Registry reg;
  reg.counter("c", "hydra_same", {});
  reg.gauge("g", "hydra_same", {});
  EXPECT_THROW(obs::to_prometheus(reg), std::invalid_argument);
}

TEST(Prometheus, HistogramQuantileInterpolatesAndClamps) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> buckets{0, 10, 0, 10};  // overflow last
  // rank 5 of 10 in [1, 2) -> midpoint.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.25, bounds, buckets), 1.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.5, bounds, buckets), 2.0);
  // Overflow bucket clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.99, bounds, buckets), 4.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.5, bounds, {0, 0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.5, {}, {}), 0.0);
}

TEST(Prometheus, HistogramQuantileIsNaNFreeOnDegenerateInput) {
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<std::uint64_t> buckets{3, 4, 1};
  // Empty / all-zero bucket windows and missing bounds return 0, never
  // NaN or a crash — the health evaluator feeds idle windows through here.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.99, bounds, {}), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.99, {}, buckets), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(0.99, bounds, {0, 0, 0}), 0.0);
  // Non-finite or out-of-range quantiles clamp instead of poisoning the
  // interpolation.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(nan, bounds, buckets),
                   obs::histogram_quantile(0.0, bounds, buckets));
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(-1.0, bounds, buckets),
                   obs::histogram_quantile(0.0, bounds, buckets));
  const double q1 = obs::histogram_quantile(1.0, bounds, buckets);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(inf, bounds, buckets), q1);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(2.0, bounds, buckets), q1);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_TRUE(std::isfinite(obs::histogram_quantile(q, bounds, buckets)));
  }
}

TEST(Prometheus, ExpositionEndsWithSingleTrailingNewline) {
  obs::Registry reg;
  reg.counter("c", "hydra_c_total", {}).inc();
  const std::string text = obs::to_prometheus(reg);
  ASSERT_GE(text.size(), 2u);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text[text.size() - 2], '\n');
}

// ---- export scheduler -----------------------------------------------------

TEST(ExportScheduler, WindowDeltasRatesRingAndRebaseline) {
  obs::ExportScheduler sched(1e-3, 1e-3, {1.0, 10.0}, /*ring_capacity=*/2);
  EXPECT_DOUBLE_EQ(sched.next_tick(), 1e-3);

  int fires = 0;
  sched.set_on_tick([&fires](const obs::WindowSample&) { ++fires; });

  obs::ExportCumulative c1;
  c1.delivered = 5;
  c1.rejected = 1;
  c1.latency_buckets = {3, 1, 1};
  c1.latency_count = 5;
  c1.latency_sum = 7.5;
  c1.properties.push_back({"fw", 1, 1, 5, 10});
  sched.tick(c1);
  ASSERT_EQ(sched.windows().size(), 1u);
  const obs::WindowSample& w0 = sched.windows().front();
  EXPECT_DOUBLE_EQ(w0.t0, 0.0);
  EXPECT_DOUBLE_EQ(w0.t1, 1e-3);
  EXPECT_EQ(w0.delta.delivered, 5u);
  EXPECT_DOUBLE_EQ(w0.pps, 5000.0);
  EXPECT_DOUBLE_EQ(w0.rejects_per_s, 1000.0);
  ASSERT_EQ(w0.delta.properties.size(), 1u);
  EXPECT_EQ(w0.delta.properties[0].check_runs, 5u);
  EXPECT_DOUBLE_EQ(sched.next_tick(), 2e-3);

  obs::ExportCumulative c2 = c1;
  c2.delivered = 8;
  c2.properties[0].check_runs = 9;
  sched.tick(c2);
  EXPECT_EQ(sched.windows().back().delta.delivered, 3u);
  EXPECT_DOUBLE_EQ(sched.windows().back().pps, 3000.0);
  EXPECT_EQ(sched.windows().back().delta.properties[0].check_runs, 4u);

  // Third capture evicts the oldest; indices stay monotone.
  sched.tick(c2);
  EXPECT_EQ(sched.captured(), 3u);
  ASSERT_EQ(sched.windows().size(), 2u);
  EXPECT_EQ(sched.windows().front().index, 1u);
  EXPECT_EQ(sched.windows().back().delta.delivered, 0u);
  EXPECT_EQ(fires, 3);

  // Rebaseline drops windows and re-anchors deltas without rewinding the
  // tick clock.
  const double tick_before = sched.next_tick();
  sched.rebaseline(obs::ExportCumulative{});
  EXPECT_EQ(sched.captured(), 0u);
  EXPECT_TRUE(sched.windows().empty());
  EXPECT_DOUBLE_EQ(sched.next_tick(), tick_before);
  sched.tick(c1);
  EXPECT_EQ(sched.windows().back().delta.delivered, 5u);
}

TEST(ExportScheduler, RingWrapsManyTimesOnLongRunsWithoutDrift) {
  // Long-run wraparound: a small ring lapped thousands of times must keep
  // indices monotone, deltas exact, and tick boundaries drift-free (they
  // are computed multiplicatively, not by repeated addition).
  constexpr std::size_t kRing = 8;
  constexpr std::uint64_t kTicks = 10000;
  obs::ExportScheduler sched(1e-3, 1e-3, {}, kRing);
  obs::ExportCumulative cum;
  for (std::uint64_t i = 0; i < kTicks; ++i) {
    cum.injected += 3;
    cum.delivered += 2;
    sched.tick(cum);
    ASSERT_LE(sched.windows().size(), kRing);
  }
  EXPECT_EQ(sched.captured(), kTicks);
  ASSERT_EQ(sched.windows().size(), kRing);
  // The ring holds exactly the last kRing windows, contiguously indexed.
  for (std::size_t i = 0; i < kRing; ++i) {
    const obs::WindowSample& w = sched.windows()[i];
    EXPECT_EQ(w.index, kTicks - kRing + i);
    EXPECT_EQ(w.delta.injected, 3u);
    EXPECT_EQ(w.delta.delivered, 2u);
    // Boundaries are exact multiples of the interval (multiplicative, no
    // accumulated error); window width is their difference.
    EXPECT_DOUBLE_EQ(w.t1, 1e-3 + 1e-3 * static_cast<double>(w.index));
  }
  // No accumulated floating-point drift after 10k boundaries.
  EXPECT_DOUBLE_EQ(sched.next_tick(),
                   1e-3 + 1e-3 * static_cast<double>(kTicks));
}

namespace {

// Leaf-spine run with the exporter armed: an allowed flow sent on a fixed
// schedule so virtual time crosses several tick boundaries in one drain.
struct ExportBed : Bed {
  explicit ExportBed(std::size_t ring_capacity = 128) {
    const int h0 = fabric.hosts[0][0];
    const int h2 = fabric.hosts[1][0];
    allow(h0, h2);
    net.set_export_interval(5e-6, ring_capacity);
    for (int i = 0; i < 20; ++i) {
      const double t = 2e-6 * (i + 1);
      net.events().schedule_at(t, [this, h0, h2] {
        net.send_from_host(h0,
                           p4rt::make_udp(ip(h0), ip(h2), 40000, 80, 64));
      });
    }
    net.events().run();
  }
};

}  // namespace

TEST(NetworkObs, StreamingExportLabeledFamiliesAndCompatNames) {
  ExportBed bed;
  EXPECT_TRUE(bed.net.export_armed());
  EXPECT_TRUE(bed.net.observability_enabled());
  ASSERT_GT(bed.net.export_scheduler_ptr()->captured(), 0u);

  const std::string prom = bed.net.export_prometheus();
  for (const char* needle :
       {"# TYPE hydra_checker_rejects_total counter",
        "hydra_checker_rejects_total{property=\"stateful_firewall\"} 0",
        "hydra_checker_check_runs_total{property=\"stateful_firewall\"}",
        "hydra_switch_forwarded_total{switch=\"leaf1\"}",
        "hydra_table_hits_total{property=\"stateful_firewall\","
        "table=\"allowed\"}",
        "hydra_delivered_latency_seconds_bucket",
        "le=\"+Inf\"", "hydra_delivered_latency_seconds_count",
        "hydra_link_utilization{",
        "# TYPE hydra_net_packets_delivered gauge"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }

  // The flat snapshot names survive untouched next to the labeled families.
  const std::string json = bed.net.metrics_json();
  EXPECT_NE(json.find("\"checker.stateful_firewall.rejects\": 0"),
            std::string::npos);
  EXPECT_NE(json.find("\"net.switch.leaf1.forwarded\""), std::string::npos);

  const std::string series = bed.net.window_series_json();
  EXPECT_NE(series.find("\"property\": \"stateful_firewall\""),
            std::string::npos);
  EXPECT_NE(series.find("\"pps\": "), std::string::npos);
}

TEST(NetworkObs, WindowSeriesDeterministicAcrossRuns) {
  ExportBed a;
  ExportBed b;
  EXPECT_EQ(a.net.window_series_json(), b.net.window_series_json());
  EXPECT_EQ(a.net.export_prometheus(), b.net.export_prometheus());
}

TEST(NetworkObs, WindowRingEvictsButKeepsCaptureCount) {
  ExportBed small(/*ring_capacity=*/4);
  const std::uint64_t captured = small.net.export_scheduler_ptr()->captured();
  ASSERT_GT(captured, 4u);
  const std::string series = small.net.window_series_json();
  std::size_t windows = 0;
  for (std::size_t p = series.find("\"index\": "); p != std::string::npos;
       p = series.find("\"index\": ", p + 1)) {
    ++windows;
  }
  EXPECT_EQ(windows, 4u);
  EXPECT_NE(series.find("\"captured\": " + std::to_string(captured)),
            std::string::npos);
}

TEST(NetworkObs, ExportGuardsAndDisarm) {
  Bed bed;
  EXPECT_FALSE(bed.net.export_armed());
  EXPECT_THROW(bed.net.window_series_json(), std::logic_error);
  EXPECT_THROW(bed.net.set_export_callback([](const obs::WindowSample&) {}),
               std::logic_error);

  bed.net.set_export_interval(1e-5);
  EXPECT_TRUE(bed.net.export_armed());
  int fires = 0;
  bed.net.set_export_callback(
      [&fires](const obs::WindowSample&) { ++fires; });

  bed.net.set_export_interval(0);  // disarm
  EXPECT_FALSE(bed.net.export_armed());
  EXPECT_THROW(bed.net.window_series_json(), std::logic_error);
  // Observability stays on; traffic still flows with a null scheduler.
  EXPECT_TRUE(bed.net.observability_enabled());
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.allow(h0, h2);
  bed.send(h0, h2);
  EXPECT_EQ(bed.net.counters().delivered, 1u);
  EXPECT_EQ(fires, 0);
}

TEST(NetworkObs, ResetSemantics) {
  Bed bed;
  const int h0 = bed.fabric.hosts[0][0];
  const int h2 = bed.fabric.hosts[1][0];
  bed.net.trace_next(4);
  bed.send(h0, h2);  // rejected (no allow entries) -> report + trace

  int callback_fires = 0;
  bed.net.subscribe_reports(
      [&callback_fires](const net::ReportRecord&) { ++callback_fires; });

  ASSERT_FALSE(bed.net.reports().empty());
  const std::size_t names_before = bed.net.metrics().size();
  ASSERT_GT(
      bed.net.metrics().counter_value("checker.stateful_firewall.rejects"),
      0u);

  // clear_reports drops records only; subscribers keep firing.
  bed.net.clear_reports();
  EXPECT_TRUE(bed.net.reports().empty());
  bed.send(h0, h2);
  EXPECT_GT(callback_fires, 0);
  EXPECT_FALSE(bed.net.reports().empty());

  // reset_observability zeroes metrics and drops traces; registrations,
  // sampler, and reports are untouched.
  EXPECT_FALSE(bed.net.trace_sink().empty());
  bed.net.reset_observability();
  EXPECT_TRUE(bed.net.trace_sink().empty());
  EXPECT_EQ(
      bed.net.metrics().counter_value("checker.stateful_firewall.rejects"),
      0u);
  EXPECT_EQ(bed.net.metrics().size(), names_before);
  EXPECT_FALSE(bed.net.reports().empty());  // not reset_observability's job

  // clear_report_subscribers drops the callbacks.
  const int fires_before = callback_fires;
  bed.net.clear_report_subscribers();
  bed.send(h0, h2);
  EXPECT_EQ(callback_fires, fires_before);
}
