#!/usr/bin/env python3
"""Assert counter monotonicity between two Prometheus text scrapes.

Usage: prom_monotonic.py BEFORE.prom AFTER.prom

Every sample belonging to a counter-typed family (including histogram
_bucket/_count/_sum series, which are cumulative) that appears in BOTH
scrapes must be >= in AFTER. Samples only present in one scrape are
ignored (top-K label sets legitimately churn). Exit 0 if monotone,
1 with a per-sample report otherwise.
"""
import sys


def parse(path):
    """Return ({sample_key: value}, {family: type})."""
    samples = {}
    types = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) >= 4:
                    types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            # name{labels} value   |   name value
            try:
                key, value = line.rsplit(" ", 1)
                samples[key] = float(value)
            except ValueError:
                print(f"{path}: unparsable line: {line!r}", file=sys.stderr)
                sys.exit(2)
    return samples, types


def family_of(sample_key):
    name = sample_key.split("{", 1)[0]
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    before, types_before = parse(sys.argv[1])
    after, types_after = parse(sys.argv[2])
    cumulative = {
        f for f, t in {**types_before, **types_after}.items()
        if t in ("counter", "histogram")
    }
    checked = 0
    bad = []
    for key, v1 in before.items():
        fam = family_of(key)
        if fam not in cumulative:
            continue
        v2 = after.get(key)
        if v2 is None:
            continue
        checked += 1
        if v2 < v1:
            bad.append((key, v1, v2))
    if bad:
        for key, v1, v2 in bad:
            print(f"NOT MONOTONE: {key}: {v1} -> {v2}")
        return 1
    if checked == 0:
        print("prom_monotonic: no overlapping counter samples to compare",
              file=sys.stderr)
        return 1
    print(f"prom_monotonic: OK ({checked} counter samples non-decreasing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
