// LTLf -> Indus translation (§3.3, Theorem 3.1).
//
// Follows the paper's scheme: the telemetry block populates an array T with
// an increasing sequence of positions and one boolean array A_i per atomic
// predicate; the checker block evaluates the first-order translation of the
// formula (Figure 5, bottom) with existential/universal quantifiers mapped
// to for-loops over T. The packet is rejected iff the trace violates the
// formula — so "checker accepts" is exactly LTLf satisfaction.
#pragma once

#include <string>

#include "compiler/compile.hpp"
#include "ltlf/formula.hpp"

namespace hydra::ltlf {

struct Translation {
  std::string indus_source;
  int num_atoms = 0;
  int capacity = 0;  // maximum trace length the program supports
};

// `max_trace_len` bounds the unrolled loops (Indus arrays are fixed-size).
Translation to_indus(const Formula& f, int max_trace_len = 8);

// Compiles the translation and executes it hop-by-hop over `trace` (one
// telemetry-block execution per event, checker at the end). Returns true
// iff the checker accepted — which Theorem 3.1 says equals LTLf truth.
bool run_translation(const compiler::CompiledChecker& compiled,
                     const Trace& trace);

// Convenience: translate + compile + run.
bool check_trace(const Formula& f, const Trace& trace, int max_trace_len = 8);

}  // namespace hydra::ltlf
