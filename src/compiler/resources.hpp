// Pipeline resource model for Tofino-class hardware (§6.2 of the paper).
//
// The paper reports two resources per checker: pipeline *stages* and Packet
// Header Vector (*PHV*) bits. This module estimates both from the IR:
//
//   * Stages — instructions are scheduled by data dependence: an
//     instruction that reads a field written earlier must land in a later
//     stage; table applies, register ops, and ALU operations each occupy a
//     stage, and deep expression trees consume one stage per operator
//     level. The checker's stage need is the longest block's critical path.
//
//   * PHV — every checker-owned field (tele, metadata, temporaries)
//     occupies the smallest 8/16/32-bit container that fits it. Fields
//     bound to the forwarding program (header variables) alias existing
//     PHV and cost nothing.
//
// Linking (§4.2): because checking code is independent of forwarding code,
// checker stages run in parallel with the baseline's — the linked program
// needs max(baseline, checker) stages, and PHV adds up.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace hydra::compiler {

// Calibrated against the paper's Table 1: the fabric-upf baseline uses
// 44.53% of PHV, and the checkers add ~2-8 points each.
inline constexpr int kTotalPhvBits = 2048;
inline constexpr int kHardwareStages = 20;  // Tofino-2 class budget

struct BaselineProfile {
  std::string name;
  int stages = 12;
  double phv_percent = 44.53;
};

// The Aether mobile-core forwarding program the paper links against.
BaselineProfile fabric_upf_profile();
// A minimal L3 forwarding profile (for the source-routing testbed).
BaselineProfile simple_router_profile();

struct ResourceReport {
  int checker_stages = 0;   // critical path of the longest block
  int init_stages = 0;
  int tele_stages = 0;
  int check_stages = 0;
  int phv_bits = 0;         // container-rounded checker PHV usage
  double phv_percent = 0.0;  // phv_bits / kTotalPhvBits
  int tables = 0;
  int registers = 0;
};

ResourceReport estimate_resources(const ir::CheckerIR& ir);

struct LinkedResources {
  int stages = 0;          // max(baseline, checker): parallel placement
  double phv_percent = 0;  // baseline + checker delta
  bool fits = true;        // within kHardwareStages and 100% PHV
};

LinkedResources link_resources(const BaselineProfile& baseline,
                               const ResourceReport& checker);

}  // namespace hydra::compiler
