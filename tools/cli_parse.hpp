// Strict numeric argv parsing shared by the CLI tools.
//
// atoi/atol silently turn garbage into 0 and saturate nothing; a typo like
// `--workers 8x` or `--ring 1e9` must instead fail loudly with the flag
// name and the accepted range — the same strictness parse_engine_kind
// applies to `--engine parallel:N`. Each helper prints a one-line
// diagnostic to stderr and returns false on bad input; callers follow up
// with their usage text and exit 2.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hydra::tools {

// Base-10 integer in [lo, hi]; rejects empty input, trailing characters,
// and out-of-range values.
inline bool parse_long_arg(const char* prog, const char* flag,
                           const char* text, long lo, long hi, long* out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(
        stderr, "%s: bad value '%s' for %s: expected an integer in [%ld, %ld]\n",
        prog, text, flag, lo, hi);
    return false;
  }
  *out = v;
  return true;
}

// Base-10 unsigned 64-bit integer (full range); rejects signs, empty
// input, trailing characters, and overflow.
inline bool parse_u64_arg(const char* prog, const char* flag,
                          const char* text, std::uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v =
      text[0] == '-' || text[0] == '+' ? (errno = ERANGE, 0ULL)
                                       : std::strtoull(text, &end, 10);
  if (end == text || end == nullptr || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "%s: bad value '%s' for %s: expected an unsigned integer\n",
                 prog, text, flag);
    return false;
  }
  *out = v;
  return true;
}

// Strictly-positive double (scientific notation fine: `--interval 5e-6`).
inline bool parse_positive_double_arg(const char* prog, const char* flag,
                                      const char* text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v > 0.0)) {
    std::fprintf(stderr,
                 "%s: bad value '%s' for %s: expected a number > 0\n", prog,
                 text, flag);
    return false;
  }
  *out = v;
  return true;
}

// Writes `content` to `path` atomically; false (with a diagnostic) on any
// I/O failure. The content lands in `<path>.tmp` first, is flushed and
// fsync'd, and only then renamed over `path` — a crash or full disk
// mid-write can never leave a truncated file at `path` (a partial
// snapshot would otherwise brick the next hydrad start).
inline bool write_text_file(const std::string& path,
                            const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::fprintf(stderr, "short write to %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hydra::tools
