// IR interpreter — executes a compiled checker's blocks on a simulated
// switch. This plays the role of the Tofino pipeline running the generated
// P4: the same CheckerIR that the P4 emitter renders is executed here
// against per-switch table/register state.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "p4rt/packet.hpp"
#include "p4rt/register.hpp"
#include "p4rt/table.hpp"

namespace hydra::p4rt {

// Per-switch, per-checker mutable state: one table per control variable
// (populated by the control plane) and one register per sensor.
struct CheckerState {
  std::vector<Table> tables;
  std::vector<RegisterArray> registers;
};

CheckerState make_checker_state(const ir::CheckerIR& ir);

// Resolves a header variable's annotation (e.g. "hdr.ipv4.src_addr" or
// "std.last_hop") to its current value; provided by the switch model.
using HeaderResolver =
    std::function<BitVec(const std::string& annotation, int width)>;

struct ExecOutcome {
  bool reject = false;
  std::vector<std::vector<BitVec>> reports;
};

// Provenance of one (or several consecutive) block executions: which table
// entries matched and which registers were touched, by IR index. The
// buffers are caller-owned scratch (cleared by the caller, capacity reused
// across packets — the same allocation-free-in-steady-state discipline as
// the value-store scratch), filled only while a provenance sink is armed
// via Interp::set_provenance. Consumed by the forensics flight recorder.
struct ExecProvenance {
  struct TableHit {
    std::int32_t table = -1;  // CheckerIR table index
    std::int32_t entry = -1;  // matched entry index; -1 = miss or default
    bool hit = false;
  };
  struct RegTouch {
    std::int32_t reg = -1;  // CheckerIR register index
    bool wrote = false;
    std::uint64_t before = 0;
    std::uint64_t after = 0;
  };
  std::vector<TableHit> table_hits;
  std::vector<RegTouch> reg_touches;
  void clear() {
    table_hits.clear();
    reg_touches.clear();
  }
};

// Hot-path execution counters. Detached (free) by default; one branch per
// event when detached, a direct pointer bump when attached.
struct InterpMetrics {
  obs::Counter instructions;   // IR instructions executed (incl. if-bodies)
  obs::Counter table_lookups;  // kTableLookup instructions
  obs::Counter reg_reads;
  obs::Counter reg_writes;
};

class Interp {
 public:
  explicit Interp(const ir::CheckerIR& ir) : ir_(ir) {}

  const ir::CheckerIR& ir() const { return ir_; }

  // A value store holds one BitVec per IR field.
  std::vector<BitVec> fresh_store() const;
  // Re-initializes `vals` to the zeroed per-field layout without giving up
  // its capacity — the allocation-free equivalent of `vals = fresh_store()`
  // for per-packet reuse on the hot path.
  void reset_store(std::vector<BitVec>& vals) const;
  void load_frame(const TeleFrame& frame, std::vector<BitVec>& vals) const;
  void store_frame(const std::vector<BitVec>& vals, TeleFrame& frame) const;

  void run(const std::vector<ir::InstrPtr>& block, std::vector<BitVec>& vals,
           CheckerState& state, const HeaderResolver& hdr,
           ExecOutcome& out) const;

  void attach_metrics(const InterpMetrics& metrics) { metrics_ = metrics; }

  // Arms (non-null) or disarms (null) provenance capture. While armed,
  // every table lookup and register access appends to `prov`; the caller
  // owns the buffers and their clearing. Disarmed cost: one branch per
  // lookup/register instruction.
  void set_provenance(ExecProvenance* prov) { prov_ = prov; }

  // Shared-table mode: route lookups through Table::lookup_shared with
  // this interpreter's private scratch instead of Table::lookup. The
  // parallel engine's flow-affinity windows flip this on while several
  // workers may execute hops of the SAME switch (hence the same Table
  // instances) concurrently; Table's last-hit cache is the only per-lookup
  // mutable table state and lookup_shared never touches it.
  void set_shared_tables(bool on) { shared_tables_ = on; }

 private:
  BitVec eval(const ir::RValue& rv, std::vector<BitVec>& vals,
              const HeaderResolver& hdr) const;
  void exec(const ir::Instr& instr, std::vector<BitVec>& vals,
            CheckerState& state, const HeaderResolver& hdr,
            ExecOutcome& out) const;

  const ir::CheckerIR& ir_;
  // Scratch key buffer reused across table lookups so the per-packet hot
  // path does not allocate. Table-lookup instructions never nest (keys are
  // pure rvalues), so a single buffer is safe. One Interp instance belongs
  // to exactly one engine worker (net::ExecContext owns it — see the
  // ownership rule in net/network.hpp); it is never shared across threads.
  mutable std::vector<BitVec> key_scratch_;
  mutable TableScratch table_scratch_;  // for shared-table-mode lookups
  InterpMetrics metrics_;  // detached unless observability is wired
  ExecProvenance* prov_ = nullptr;  // armed only while forensics is on
  bool shared_tables_ = false;  // see set_shared_tables()
};

}  // namespace hydra::p4rt
