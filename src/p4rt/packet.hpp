// Simulation packet model. Headers are typed structs rather than raw bytes
// — the simulator never needs byte-exact serialization, but wire sizes are
// computed faithfully (including Hydra telemetry bytes) so that
// serialization delay and throughput numbers are meaningful.
//
// The header set covers everything the paper's deployments need:
// Ethernet/VLAN, IPv4, TCP/UDP/ICMP, GTP-U encapsulation (Aether UPF), a
// source-routing port stack (§5.1), and per-checker Hydra telemetry frames.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace hydra::p4rt {

struct EthernetH {
  std::uint64_t dst = 0;  // 48 bits used
  std::uint64_t src = 0;
  std::uint16_t ethertype = 0x0800;
  static constexpr int kBytes = 14;
};

struct VlanH {
  std::uint16_t vid = 0;
  static constexpr int kBytes = 4;
};

struct Ipv4H {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t proto = 17;
  std::uint8_t ttl = 64;
  std::uint8_t dscp = 0;
  static constexpr int kBytes = 20;
};

// Unified TCP/UDP view; which one it is follows from ipv4.proto.
struct L4H {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  static constexpr int kUdpBytes = 8;
  static constexpr int kTcpBytes = 20;
};

struct IcmpH {
  std::uint8_t type = 8;  // echo request
  std::uint16_t ident = 0;
  std::uint16_t seq = 0;
  static constexpr int kBytes = 8;
};

// GTP-U tunnel header (outer UDP dport 2152 in Aether).
struct GtpuH {
  std::uint32_t teid = 0;
  static constexpr int kBytes = 8;
};

inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint16_t kGtpuPort = 2152;

// Telemetry carried for one deployed checker: values indexed by the
// checker IR's FieldId (only kTele slots are meaningful on the wire).
struct TeleFrame {
  int checker = -1;  // deployment id assigned by the network
  std::vector<BitVec> values;

  // Fault-injection wire damage (net/faults.hpp). When a corruption fault
  // hits this frame, the injector serializes it through the real codec,
  // damages the bytes, and stores them here with `damaged` set; the next
  // switch must re-parse `wire` before trusting `values` (stale from the
  // hop before the damage). A parse failure is a fail-closed checker
  // reject, never a throw. `wire` may legitimately be empty (truncated to
  // nothing), hence the explicit flag.
  std::vector<std::uint8_t> wire;
  bool damaged = false;

  // Set when this frame's telemetry ran on a switch whose sensor state was
  // freshly wiped by a restart ("cold"). Checker verdicts for cold frames
  // are suppressed — zeroed registers would otherwise raise false
  // violations. Metadata only; conceptually one reserved header bit.
  bool cold = false;

  // Deployment generation the frame was stamped with at its first hop.
  // Deployment ids are reused after undeploy; the generation distinguishes
  // a frame from the slot's previous occupant so a rolling swap can reject
  // stragglers fail-closed instead of misattributing them (conceptually
  // part of the reserved header word next to `cold`).
  std::uint32_t generation = 0;

  // A frame with checker < 0 is RETIRED: its slot (and the capacity of
  // `values`/`wire`) stays in the packet for reuse, but it is not live on
  // the wire — frame lookups, wire sizing, and corruption all skip it.
  // Pooled packets retire frames instead of erasing them so the per-hop
  // telemetry path stays allocation-free (see Packet::retire_frames).
  bool live() const { return checker >= 0; }
  void retire() {
    checker = -1;
    values.clear();  // keeps capacity
    wire.clear();
    damaged = false;
    cold = false;
    generation = 0;
  }
};

// Flow identity parsed from a packet's headers, preferring the inner
// (tunneled) headers when a GTP-U encapsulation is present — reports and
// traces should name the user flow, not the tunnel. `parsed` is false for
// packets without an IPv4 header (then the numeric fields are zero).
struct FlowId {
  bool parsed = false;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  // "10.0.1.1:40000 -> 10.0.2.1:81 udp", or "<no-ipv4>" when unparseable.
  std::string to_string() const;
};

struct Packet {
  std::uint64_t id = 0;
  double created_at = 0.0;  // simulation seconds
  int hops = 0;  // switches traversed so far (metadata, not on the wire)

  EthernetH eth;
  std::optional<VlanH> vlan;
  // Source-routing stack: egress ports, next hop at the back (popped).
  std::vector<std::uint16_t> sr_stack;
  bool has_sr = false;

  std::optional<Ipv4H> ipv4;     // outer
  std::optional<L4H> l4;         // outer L4
  std::optional<IcmpH> icmp;
  std::optional<GtpuH> gtpu;
  std::optional<Ipv4H> inner_ipv4;
  std::optional<L4H> inner_l4;

  int payload_bytes = 0;

  std::vector<TeleFrame> tele;  // one frame per deployed checker

  // Scratch visible to checkers via `to_be_dropped`-style header vars:
  // set by the forwarding pipeline when it decides to drop (the packet is
  // still carried to the checker so the checker can observe the decision).
  bool fwd_drop = false;

  TeleFrame* frame(int checker);
  const TeleFrame* frame(int checker) const;

  // ---- pooling support (util::Arena<Packet>) -----------------------------
  // Pooled packets are default-constructed once and recycled; these reset a
  // recycled slot without surrendering any internal buffer capacity.

  // Back to the default-constructed observable state; tele frames are
  // retired in place (capacity kept), sr_stack/wire cleared not shrunk.
  void reuse();
  // First retired tele slot re-armed for `checker` (appends only when no
  // retired slot exists — steady state after the first circulation never
  // appends). Returns the live frame.
  TeleFrame& add_frame(int checker);
  // Retires every live frame (the last-hop telemetry strip).
  void retire_frames();
  // Any live telemetry aboard? Replaces `!tele.empty()` checks now that
  // retired slots linger in `tele`.
  bool has_live_tele() const;

  // Total wire size, telemetry included.
  int wire_bytes(const std::vector<int>& tele_bytes_per_checker = {}) const;
  // Wire size given explicit per-frame telemetry byte counts is used by
  // the network; this overload sums header structs + payload only.
  int base_wire_bytes() const;
};

FlowId flow_of(const Packet& pkt);

// Builders used by traffic generators and tests.
Packet make_udp(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint16_t sport, std::uint16_t dport, int payload_bytes);
Packet make_tcp(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint16_t sport, std::uint16_t dport, int payload_bytes);
Packet make_icmp_echo(std::uint32_t src_ip, std::uint32_t dst_ip,
                      std::uint16_t ident, std::uint16_t seq);
// Wraps `inner` into a GTP-U tunnel towards the given endpoints.
Packet gtpu_encap(const Packet& inner, std::uint32_t outer_src,
                  std::uint32_t outer_dst, std::uint32_t teid);
Packet gtpu_decap(const Packet& outer);
// In-place encap/decap: same header transforms as the by-value pair but
// mutating `p` directly — no Packet copy (and thus no vector allocations
// for its telemetry frames) on the UPF hot path.
void gtpu_encap_inplace(Packet& p, std::uint32_t outer_src,
                        std::uint32_t outer_dst, std::uint32_t teid);
void gtpu_decap_inplace(Packet& p);

// In-place builders for pooled slots: Packet::reuse() + the same header
// setup as the by-value builders, no temporary Packet.
void make_udp_into(Packet& p, std::uint32_t src_ip, std::uint32_t dst_ip,
                   std::uint16_t sport, std::uint16_t dport,
                   int payload_bytes);
void make_tcp_into(Packet& p, std::uint32_t src_ip, std::uint32_t dst_ip,
                   std::uint16_t sport, std::uint16_t dport,
                   int payload_bytes);
void make_icmp_echo_into(Packet& p, std::uint32_t src_ip,
                         std::uint32_t dst_ip, std::uint16_t ident,
                         std::uint16_t seq);
// In-place GTP-U uplink build: UDP inner headers + tunnel in one pass.
void make_gtpu_udp_into(Packet& p, std::uint32_t outer_src,
                        std::uint32_t outer_dst, std::uint32_t teid,
                        std::uint32_t inner_src, std::uint32_t inner_dst,
                        std::uint16_t sport, std::uint16_t dport,
                        int payload_bytes);

}  // namespace hydra::p4rt
