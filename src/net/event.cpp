#include "net/event.hpp"

#include <limits>
#include <stdexcept>

namespace hydra::net {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

void check_not_past(SimTime t, SimTime now) {
  if (t < now) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
}
}  // namespace

void EventQueue::schedule_at(SimTime t, std::function<void()> fn) {
  check_not_past(t, now_);
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.kind = EventKind::kClosure;
  item.fn = std::move(fn);
  cl_heap_.push(std::move(item));
}

void EventQueue::schedule_tick_at(SimTime t, TickTarget* target) {
  check_not_past(t, now_);
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.kind = EventKind::kTick;
  item.tick = target;
  cl_heap_.push(std::move(item));
}

void EventQueue::schedule_packet_at(SimTime t, int dest, int dest_port,
                                    PacketHandle pkt) {
  check_not_past(t, now_);
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.kind = EventKind::kPacketSend;
  item.work.sw = dest;
  item.work.in_port = dest_port;
  item.work.pkt = pkt;
  cl_heap_.push(std::move(item));
}

void EventQueue::schedule_switch_at(SimTime t, int sw, int in_port,
                                    PacketHandle pkt) {
  check_not_past(t, now_);
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.kind = EventKind::kSwitchWork;
  item.work.sw = sw;
  item.work.in_port = in_port;
  item.work.pkt = pkt;
  sw_heap_.push(std::move(item));
}

void EventQueue::schedule_control_at(SimTime t, int sw, ControlHandle op) {
  check_not_past(t, now_);
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.kind = EventKind::kSwitchWork;
  item.work.sw = sw;
  item.work.ctl = op;
  sw_heap_.push(std::move(item));
}

SimTime EventQueue::next_time() const {
  return switch_heap_first() ? sw_heap_.top().t : cl_heap_.top().t;
}

SimTime EventQueue::next_closure_time() const {
  return cl_heap_.empty() ? kInf : cl_heap_.top().t;
}

SimTime EventQueue::next_switch_time() const {
  return sw_heap_.empty() ? kInf : sw_heap_.top().t;
}

bool EventQueue::switch_heap_first() const {
  if (sw_heap_.empty()) return false;
  if (cl_heap_.empty()) return true;
  const Item& s = sw_heap_.top();
  const Item& c = cl_heap_.top();
  return s.t < c.t || (s.t == c.t && s.seq < c.seq);
}

EventQueue::Item EventQueue::pop_heap_top(Heap& heap) {
  // Move out before pop so handlers may schedule more events.
  Item item = std::move(const_cast<Item&>(heap.top()));
  heap.pop();
  return item;
}

EventQueue::Item EventQueue::pop_next() {
  return pop_heap_top(switch_heap_first() ? sw_heap_ : cl_heap_);
}

void EventQueue::pop_window(SimTime limit, SimTime window_end,
                            std::vector<Item>& out) {
  if (empty()) return;
  const SimTime t0 = next_time();
  while (!empty()) {
    const SimTime t = next_time();
    if (t > limit || (t != t0 && t >= window_end)) break;
    out.push_back(pop_next());
  }
}

void EventQueue::run_self(SimTime t) {
  while (!empty() && next_time() <= t) {
    Item item = pop_next();
    now_ = item.t;
    switch (item.kind) {
      case EventKind::kClosure:
        item.fn();
        break;
      case EventKind::kTick:
        item.tick->tick(now_);
        break;
      case EventKind::kPacketSend:
      case EventKind::kSwitchWork:
        // Packet handles resolve through the owning Network's pools; a
        // bare queue has no way to execute them.
        throw std::logic_error(
            "network event scheduled on an EventQueue with no executor");
    }
  }
}

void EventQueue::run_until(SimTime t) {
  if (executor_ != nullptr) {
    executor_->drain(*this, t);
  } else {
    run_self(t);
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run() {
  if (executor_ != nullptr) {
    executor_->drain(*this, kInf);
  } else {
    run_self(kInf);
  }
}

}  // namespace hydra::net
