# Empty compiler generated dependencies file for ablation_check_placement.
# This may be replaced when dependencies are built.
