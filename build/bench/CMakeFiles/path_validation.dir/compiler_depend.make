# Empty compiler generated dependencies file for path_validation.
# This may be replaced when dependencies are built.
